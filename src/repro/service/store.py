"""Durable content-addressed result store (sqlite, WAL mode).

This is the production-grade form of the paper's "persistent disk-based
database": one sqlite file shared by any number of processes, holding

* ``results`` — string-keyed JSON metric values partitioned into
  *namespaces* (``metrics``, ``evalcache``, ``frontiers``, ...), with
  atomic per-key upserts instead of whole-file rewrites;
* ``jobs`` — the job queue's persistent state (owned by
  :mod:`repro.service.queue`, created here so one connection bootstraps
  the whole schema);
* ``runs`` / ``run_rows`` — the analytics subsystem's durable run
  tables (owned by :mod:`repro.analytics.runs`): one row per recorded
  execution plus one row per (design, benchmark, repetition) measured.

Keys are *content addresses*: they embed the trace digest and the
configuration-family identity (see :func:`repro.service.jobs.trace_key`
and the sweep checkpoint key format), so identical work submitted by
different clients lands on the same row and is computed once.

Concurrency: WAL mode allows one writer plus many readers without
blocking; writes go through short ``BEGIN IMMEDIATE`` transactions with
a busy timeout, so concurrent multi-process writers queue rather than
corrupt.  Connections are per-thread (sqlite connections must not cross
threads), created lazily.

:class:`StoreEvaluationCache` adapts a store namespace to the
:class:`~repro.explore.evalcache.EvaluationCache` API so every existing
call site — sweep checkpointing, evaluator priming, journal snapshots —
can run on either backend unchanged; :func:`open_evaluation_cache`
dispatches on the path suffix.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.errors import EvaluationCacheError, ServiceError
from repro.explore.evalcache import EvaluationCache, Metric

#: Path suffixes that select the sqlite backend in
#: :func:`open_evaluation_cache`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Default namespace for loose (non-adapter) results.
DEFAULT_NAMESPACE = "metrics"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    namespace TEXT NOT NULL,
    key       TEXT NOT NULL,
    value     TEXT NOT NULL,
    created   REAL NOT NULL,
    updated   REAL NOT NULL,
    PRIMARY KEY (namespace, key)
);
CREATE TABLE IF NOT EXISTS jobs (
    id            TEXT PRIMARY KEY,
    spec          TEXT NOT NULL,
    state         TEXT NOT NULL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    result        TEXT,
    error         TEXT,
    owner         TEXT,
    submitted     REAL NOT NULL,
    started       REAL,
    finished      REAL,
    lease_expires REAL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, submitted);
CREATE TABLE IF NOT EXISTS workers (
    id         TEXT PRIMARY KEY,
    tags       TEXT NOT NULL DEFAULT '[]',
    meta       TEXT NOT NULL DEFAULT '{}',
    registered REAL NOT NULL,
    last_seen  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id        TEXT PRIMARY KEY,
    kind      TEXT NOT NULL,
    label     TEXT,
    benchmark TEXT,
    state     TEXT NOT NULL DEFAULT 'running',
    spec      TEXT NOT NULL DEFAULT '{}',
    error     TEXT,
    started   REAL NOT NULL,
    finished  REAL,
    wall_s    REAL,
    rows      INTEGER NOT NULL DEFAULT 0,
    journal   TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_started ON runs (started);
CREATE TABLE IF NOT EXISTS run_rows (
    run_id        TEXT NOT NULL,
    idx           INTEGER NOT NULL,
    benchmark     TEXT,
    role          TEXT,
    design        TEXT NOT NULL,
    sets          INTEGER,
    assoc         INTEGER,
    line_size     INTEGER,
    repetition    INTEGER NOT NULL DEFAULT 0,
    accesses      INTEGER,
    misses        REAL,
    miss_rate     REAL,
    cycles        REAL,
    cost          REAL,
    area          REAL,
    estimated     INTEGER NOT NULL DEFAULT 0,
    error         REAL,
    source        TEXT,
    wall_s        REAL,
    kernel_s      REAL,
    retries       INTEGER,
    timeouts      INTEGER,
    fallbacks     INTEGER,
    cache_hits    INTEGER,
    cache_misses  INTEGER,
    bytes_shipped INTEGER,
    extra         TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, idx)
);
CREATE INDEX IF NOT EXISTS run_rows_design
    ON run_rows (run_id, design, benchmark, repetition);
"""

#: Columns added after the first released schema; applied as ALTERs so
#: databases created by older builds keep working (sqlite has no
#: ADD COLUMN IF NOT EXISTS).  Whole new tables (``runs`` /
#: ``run_rows``, the analytics run model) migrate via the idempotent
#: CREATE IF NOT EXISTS statements in ``_SCHEMA``, which rerun on every
#: open — only retrofitted *columns* need an entry here.
_MIGRATIONS = (
    "ALTER TABLE jobs ADD COLUMN lease_expires REAL",
    "ALTER TABLE runs ADD COLUMN benchmark TEXT",
)


class ResultStore:
    """Content-addressed metric store over one sqlite database file.

    ``namespace`` is the default partition for the key/value methods;
    every method also takes an explicit ``namespace=`` override so one
    store object can serve several logical tables.  Hit/miss counters
    are per-instance (they describe *this* process's lookup traffic, not
    the shared database).
    """

    def __init__(
        self,
        path: str | Path,
        namespace: str = DEFAULT_NAMESPACE,
        timeout: float = 30.0,
    ):
        self.path = Path(path)
        self.namespace = namespace
        self.timeout = timeout
        self.hits = 0
        self.misses = 0
        self._local = threading.local()
        self._init_schema()

    # ------------------------------------------------------------------
    # Connections and transactions.
    # ------------------------------------------------------------------

    def connection(self) -> sqlite3.Connection:
        """This thread's connection (created lazily, WAL mode)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                conn = sqlite3.connect(
                    self.path, timeout=self.timeout, isolation_level=None
                )
                conn.row_factory = sqlite3.Row
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(
                    f"PRAGMA busy_timeout={int(self.timeout * 1000)}"
                )
            except sqlite3.Error as exc:
                raise EvaluationCacheError(
                    f"cannot open result store {self.path}: {exc}"
                ) from exc
            self._local.conn = conn
        return conn

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """A short ``BEGIN IMMEDIATE`` write transaction.

        IMMEDIATE takes the write lock up front, so concurrent
        multi-process writers serialize at BEGIN (bounded by the busy
        timeout) instead of deadlocking on lock upgrades.  Nested use
        inside an open transaction joins it.
        """
        conn = self.connection()
        if conn.in_transaction:
            yield conn
            return
        try:
            conn.execute("BEGIN IMMEDIATE")
        except sqlite3.Error as exc:
            raise EvaluationCacheError(
                f"result store {self.path} is locked or unusable: {exc}"
            ) from exc
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        else:
            conn.execute("COMMIT")

    def _init_schema(self) -> None:
        # executescript manages its own transaction (it commits any open
        # one first), so it must not run inside self.transaction().
        try:
            conn = self.connection()
            conn.executescript(_SCHEMA)
            for statement in _MIGRATIONS:
                try:
                    conn.execute(statement)
                except sqlite3.OperationalError as exc:
                    if "duplicate column" not in str(exc).lower():
                        raise
        except sqlite3.Error as exc:
            raise EvaluationCacheError(
                f"cannot initialize result store {self.path}: {exc}"
            ) from exc

    def close(self) -> None:
        """Close this thread's connection (others close on GC/exit)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------
    # Key/value API.
    # ------------------------------------------------------------------

    def _ns(self, namespace: str | None) -> str:
        return namespace if namespace is not None else self.namespace

    def put(
        self, key: str, value: Metric, namespace: str | None = None
    ) -> None:
        """Atomically upsert one metric (durable on return)."""
        self.put_many({key: value}, namespace=namespace)

    def put_many(
        self, items: Mapping[str, Metric], namespace: str | None = None
    ) -> None:
        """Upsert a batch of metrics in one transaction."""
        if not items:
            return
        ns = self._ns(namespace)
        now = time.time()
        try:
            rows = [
                (ns, key, json.dumps(value), now, now) for key, value in items.items()
            ]
        except (TypeError, ValueError) as exc:
            raise EvaluationCacheError(
                f"metric value is not JSON-representable: {exc}"
            ) from exc
        with self.transaction() as conn:
            conn.executemany(
                "INSERT INTO results (namespace, key, value, created, updated)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (namespace, key) DO UPDATE"
                " SET value = excluded.value, updated = excluded.updated",
                rows,
            )

    def _fetch(self, key: str, namespace: str | None) -> sqlite3.Row | None:
        return self.connection().execute(
            "SELECT value FROM results WHERE namespace = ? AND key = ?",
            (self._ns(namespace), key),
        ).fetchone()

    def get(self, key: str, namespace: str | None = None) -> Metric | None:
        """The stored metric, or None when absent (counted as a miss).

        Matches :meth:`EvaluationCache.get`: a present key whose stored
        value is ``null`` still counts as a hit.
        """
        row = self._fetch(key, namespace)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(row["value"])

    def contains(self, key: str, namespace: str | None = None) -> bool:
        """Presence test without hit/miss accounting."""
        return self._fetch(key, namespace) is not None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def get_or_compute(
        self, key: str, compute: Callable[[], Metric], namespace: str | None = None
    ) -> Metric:
        """Lookup, else evaluate and durably store."""
        row = self._fetch(key, namespace)
        if row is not None:
            self.hits += 1
            return json.loads(row["value"])
        self.misses += 1
        value = compute()
        self.put(key, value, namespace=namespace)
        return value

    def items(
        self,
        prefix: str = "",
        namespace: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Metric]:
        """All (key, value) pairs whose key starts with ``prefix``."""
        sql = (
            "SELECT key, value FROM results"
            " WHERE namespace = ? AND key GLOB ? ORDER BY key"
        )
        args: list[Any] = [self._ns(namespace), _glob_prefix(prefix)]
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        rows = self.connection().execute(sql, args).fetchall()
        return {row["key"]: json.loads(row["value"]) for row in rows}

    def keys(
        self, prefix: str = "", namespace: str | None = None
    ) -> list[str]:
        """All keys with the given prefix, sorted."""
        rows = self.connection().execute(
            "SELECT key FROM results WHERE namespace = ? AND key GLOB ?"
            " ORDER BY key",
            (self._ns(namespace), _glob_prefix(prefix)),
        ).fetchall()
        return [row["key"] for row in rows]

    def namespaces(self) -> dict[str, int]:
        """Entry counts per namespace across the whole database."""
        rows = self.connection().execute(
            "SELECT namespace, COUNT(*) AS n FROM results GROUP BY namespace"
        ).fetchall()
        return {row["namespace"]: row["n"] for row in rows}

    def count(self, namespace: str | None = None) -> int:
        """Entries in one namespace."""
        row = self.connection().execute(
            "SELECT COUNT(*) AS n FROM results WHERE namespace = ?",
            (self._ns(namespace),),
        ).fetchone()
        return int(row["n"])

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # GC.
    # ------------------------------------------------------------------

    def delete(self, key: str, namespace: str | None = None) -> bool:
        """Remove one entry; True when it existed."""
        with self.transaction() as conn:
            cur = conn.execute(
                "DELETE FROM results WHERE namespace = ? AND key = ?",
                (self._ns(namespace), key),
            )
        return cur.rowcount > 0

    def gc(
        self,
        namespace: str | None = None,
        older_than: float | None = None,
        prefix: str = "",
    ) -> int:
        """Remove entries; returns how many were deleted.

        ``older_than`` is an age in seconds against each row's last
        update, so periodically re-derived results survive while
        abandoned ones age out.  With no arguments, clears the default
        namespace.
        """
        sql = "DELETE FROM results WHERE namespace = ? AND key GLOB ?"
        args: list[Any] = [self._ns(namespace), _glob_prefix(prefix)]
        if older_than is not None:
            sql += " AND updated < ?"
            args.append(time.time() - older_than)
        with self.transaction() as conn:
            cur = conn.execute(sql, args)
        return cur.rowcount

    def vacuum(self) -> None:
        """Reclaim disk space after large GCs."""
        self.connection().execute("VACUUM")

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in this process; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, Metric]:
        """Hit/miss accounting plus database-wide shape (journal-friendly)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": self.count(),
            "namespaces": self.namespaces(),
            "db_bytes": size,
        }


def _glob_prefix(prefix: str) -> str:
    """GLOB pattern matching keys that start with ``prefix`` literally.

    GLOB (unlike LIKE) is case-sensitive and its metacharacters are
    rare in keys; escape the ones that do occur via character classes.
    """
    escaped = []
    for ch in prefix:
        if ch in "*?[":
            escaped.append(f"[{ch}]")
        else:
            escaped.append(ch)
    return "".join(escaped) + "*"


class StoreEvaluationCache(EvaluationCache):
    """:class:`EvaluationCache` API over one :class:`ResultStore` namespace.

    Every lookup reads through to sqlite (no stale in-memory snapshot),
    so concurrent processes sharing the database observe each other's
    writes immediately — the property that lets parallel spacewalker
    runs de-duplicate simulation work.  ``bulk()`` batches puts into one
    transaction, mirroring the JSON backend's one-flush semantics.
    """

    def __init__(self, store: ResultStore, namespace: str = "evalcache"):
        # Deliberately no super().__init__: persistence is the store's.
        self.store = store
        self.namespace = namespace
        self.path = store.path
        self.hits = 0
        self.misses = 0
        self._deferring = False
        self._dirty = False
        self._pending: dict[str, Metric] = {}

    def __contains__(self, key: str) -> bool:
        if self._deferring and key in self._pending:
            return True
        return self.store.contains(key, namespace=self.namespace)

    def get(self, key: str) -> Metric | None:
        """The stored metric, or None when absent (a miss).

        Same present-``null``-is-a-hit accounting as the JSON backend.
        """
        if self._deferring and key in self._pending:
            self.hits += 1
            return self._pending[key]
        row = self.store._fetch(key, self.namespace)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(row["value"])

    def put(self, key: str, value: Metric) -> None:
        """Upsert one metric (deferred to one transaction inside bulk)."""
        if self._deferring:
            self._pending[key] = value
            self._dirty = True
            return
        self.store.put(key, value, namespace=self.namespace)

    def put_many(self, items: Mapping[str, Metric]) -> None:
        """Upsert a batch in one transaction."""
        if self._deferring:
            self._pending.update(items)
            self._dirty = bool(self._pending) or self._dirty
            return
        self.store.put_many(items, namespace=self.namespace)

    @contextmanager
    def bulk(self) -> Iterator["StoreEvaluationCache"]:
        """Defer puts inside the block; one transaction on exit."""
        if self._deferring:
            yield self
            return
        self._deferring = True
        try:
            yield self
        finally:
            self._deferring = False
            self._dirty = False
            pending, self._pending = self._pending, {}
            if pending:
                self.store.put_many(pending, namespace=self.namespace)

    def get_or_compute(self, key: str, compute: Callable[[], Metric]) -> Metric:
        """Lookup, else evaluate and store."""
        if self._deferring and key in self._pending:
            self.hits += 1
            return self._pending[key]
        row = self.store._fetch(key, self.namespace)
        if row is not None:
            self.hits += 1
            return json.loads(row["value"])
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def stats(self) -> dict[str, Metric]:
        """Hit/miss accounting snapshot (journal-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self),
        }

    def __len__(self) -> int:
        return self.store.count(self.namespace) + len(self._pending)


def open_evaluation_cache(
    path: str | Path | None, namespace: str = "evalcache"
) -> EvaluationCache:
    """An evaluation cache on the backend the path suffix selects.

    ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` open (or create) a
    :class:`ResultStore` and adapt it; anything else (including None,
    the in-memory cache) keeps the legacy JSON backend.  Either return
    value is an :class:`EvaluationCache`, so call sites need no
    branching.
    """
    if path is not None and Path(path).suffix.lower() in SQLITE_SUFFIXES:
        return StoreEvaluationCache(ResultStore(path), namespace=namespace)
    return EvaluationCache(path)


def require_store(cache: EvaluationCache) -> ResultStore:
    """The store behind an adapter (for callers needing raw access)."""
    if isinstance(cache, StoreEvaluationCache):
        return cache.store
    raise ServiceError(
        "this EvaluationCache is not store-backed; expected a "
        "StoreEvaluationCache adapter"
    )
