"""VLIW processor specification.

The paper names processors by their function-unit counts: ``3221`` has
3 integer, 2 float, 2 memory and 1 branch unit.  Issue width is the sum of
the unit counts *plus* the paper's convention that the reference 1111
machine "can issue up to 4 operations per cycle" — i.e. issue width equals
the total number of units (one operation per unit per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.operations import OP_CLASSES, OpClass


@dataclass(frozen=True)
class VliwProcessor:
    """A point in the VLIW processor design space.

    Parameters
    ----------
    name:
        Display name; conventionally the four unit-count digits
        (``"1111"``, ``"6332"``).
    units:
        Mapping from :class:`OpClass` to the number of function units of
        that class.  Every class must be present with a count >= 1 so that
        any program can execute.
    int_registers / fp_registers / pred_registers:
        Architectural register-file sizes.  Operand encodings take
        ``ceil(log2(size))`` bits each, so bigger files widen the
        instruction format (a dilation source, Section 4.1).
    has_predication / has_speculation:
        Feature flags.  The dilation model requires the reference and
        target processors to share these flags (Section 4.1, step 1).
    """

    name: str
    units: dict[OpClass, int] = field(
        default_factory=lambda: {cls: 1 for cls in OP_CLASSES}
    )
    int_registers: int = 32
    fp_registers: int = 32
    pred_registers: int = 32
    has_predication: bool = False
    has_speculation: bool = True

    def __post_init__(self) -> None:
        for cls in OP_CLASSES:
            count = self.units.get(cls, 0)
            if count < 1:
                raise ConfigurationError(
                    f"processor {self.name!r} needs at least one "
                    f"{cls.value} unit (got {count})"
                )
        for label, size in (
            ("int_registers", self.int_registers),
            ("fp_registers", self.fp_registers),
            ("pred_registers", self.pred_registers),
        ):
            if size < 2 or size & (size - 1):
                raise ConfigurationError(
                    f"processor {self.name!r}: {label} must be a power of "
                    f"two >= 2 (got {size})"
                )

    @property
    def issue_width(self) -> int:
        """Maximum operations issued per cycle (one per function unit)."""
        return sum(self.units[cls] for cls in OP_CLASSES)

    def unit_count(self, opclass: OpClass) -> int:
        """Number of function units of class ``opclass``."""
        return self.units[opclass]

    @property
    def digit_name(self) -> str:
        """Four-digit name derived from the unit counts (``"3221"``)."""
        return "".join(str(self.units[cls]) for cls in OP_CLASSES)

    def compatible_reference(self, other: "VliwProcessor") -> bool:
        """True if ``other`` may serve as this processor's reference.

        The dilation model's first assumption requires matching
        predication and speculation features (Section 4.1, step 1).
        """
        return (
            self.has_predication == other.has_predication
            and self.has_speculation == other.has_speculation
        )

    def __str__(self) -> str:
        return self.name


def make_processor(
    n_int: int,
    n_float: int,
    n_memory: int,
    n_branch: int,
    *,
    name: str | None = None,
    **kwargs: object,
) -> VliwProcessor:
    """Build a processor from the four unit counts.

    ``make_processor(3, 2, 2, 1)`` is the paper's ``3221`` machine.
    Register-file sizes default to scaling with issue width: wider machines
    need more registers to feed their units, which is one of the paper's
    stated reasons wider formats dilate code.
    """
    units = {
        OpClass.INT: n_int,
        OpClass.FLOAT: n_float,
        OpClass.MEMORY: n_memory,
        OpClass.BRANCH: n_branch,
    }
    width = n_int + n_float + n_memory + n_branch
    defaults: dict[str, object] = {}
    if "int_registers" not in kwargs:
        defaults["int_registers"] = _scaled_regfile(width)
    if "fp_registers" not in kwargs:
        defaults["fp_registers"] = _scaled_regfile(width)
    label = name if name is not None else f"{n_int}{n_float}{n_memory}{n_branch}"
    return VliwProcessor(name=label, units=units, **defaults, **kwargs)  # type: ignore[arg-type]


def _scaled_regfile(issue_width: int) -> int:
    """Register-file size heuristic: wider machines need more registers.

    4-wide -> 32, 5..8-wide -> 64, 9..10-wide -> 128, wider -> 256.
    Matches the paper's observation that operand formats of wider
    processors are "typically larger due to larger register files" (each
    doubling adds one bit to every register specifier).
    """
    if issue_width <= 4:
        return 32
    if issue_width <= 8:
        return 64
    if issue_width <= 10:
        return 128
    return 256
