"""Machine description (mdes) consumed by the compiler substrate.

The paper's synthesis system emits an mdes file describing the processor to
the Trimaran compiler (Section 3.2).  Our equivalent bundles the processor
spec with operation latencies and derived encoding facts used by both the
scheduler and the instruction-format synthesizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.operations import OpClass
from repro.machine.processor import VliwProcessor


def default_latencies() -> dict[OpClass, int]:
    """Latency (cycles until result available) per operation class.

    Values mirror a late-90s embedded VLIW: single-cycle integer ALU,
    3-cycle FP, 2-cycle load-use, 1-cycle branch resolution.
    """
    return {
        OpClass.INT: 1,
        OpClass.FLOAT: 3,
        OpClass.MEMORY: 2,
        OpClass.BRANCH: 1,
    }


@dataclass(frozen=True)
class MachineDescription:
    """Everything the compiler and assembler need to know about a machine."""

    processor: VliwProcessor
    latencies: dict[OpClass, int] = field(default_factory=default_latencies)

    def __post_init__(self) -> None:
        for cls, lat in self.latencies.items():
            if lat < 1:
                raise ConfigurationError(
                    f"latency for {cls.value} must be >= 1 (got {lat})"
                )
        missing = [c for c in OpClass if c not in self.latencies]
        if missing:
            raise ConfigurationError(
                f"mdes missing latencies for {[c.value for c in missing]}"
            )

    def latency(self, opclass: OpClass) -> int:
        """Result latency in cycles of an ``opclass`` operation."""
        return self.latencies[opclass]

    def register_specifier_bits(self, opclass: OpClass) -> int:
        """Bits needed to name one register operand of the given class."""
        proc = self.processor
        if opclass is OpClass.FLOAT:
            return _bits_for(proc.fp_registers)
        return _bits_for(proc.int_registers)

    def operation_encoding_bits(self, opclass: OpClass) -> int:
        """Bits to encode one operation of ``opclass`` in a long template.

        opcode (7 bits) + up to three register specifiers + a predicate
        specifier when the machine supports predication.  This is the
        per-slot payload used by :mod:`repro.iformat.format_synth`.
        """
        proc = self.processor
        reg_bits = self.register_specifier_bits(opclass)
        opcode_bits = 7
        operand_count = 3
        bits = opcode_bits + operand_count * reg_bits
        if proc.has_predication:
            bits += _bits_for(proc.pred_registers)
        if proc.has_speculation:
            bits += 1  # speculation tag bit
        return bits


def _bits_for(size: int) -> int:
    """ceil(log2(size)) for a power-of-two register-file size."""
    return max(1, int(math.log2(size)))
