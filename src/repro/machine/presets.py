"""The processors used in the paper's evaluation (Section 6).

The experiments use a narrow ``1111`` machine (one unit of each class,
4-wide) as the reference processor and four wider targets: ``2111``
(5-wide), ``3221`` (8-wide), ``4221`` (9-wide) and ``6332`` (14-wide).
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError
from repro.machine.processor import VliwProcessor, make_processor

P1111: VliwProcessor = make_processor(1, 1, 1, 1)
P2111: VliwProcessor = make_processor(2, 1, 1, 1)
P3221: VliwProcessor = make_processor(3, 2, 2, 1)
P4221: VliwProcessor = make_processor(4, 2, 2, 1)
P6332: VliwProcessor = make_processor(6, 3, 3, 2)

#: Reference processor for all paper experiments.
REFERENCE_PROCESSOR: VliwProcessor = P1111

#: The "arbitrary" (target) processors, in paper order.
TARGET_PROCESSORS: tuple[VliwProcessor, ...] = (P2111, P3221, P4221, P6332)

#: Reference followed by targets, matching the columns of Tables 2-4.
PAPER_PROCESSORS: tuple[VliwProcessor, ...] = (
    REFERENCE_PROCESSOR,
    *TARGET_PROCESSORS,
)

_NAME_RE = re.compile(r"^(\d)(\d)(\d)(\d)$")


def processor_from_name(name: str, **kwargs: object) -> VliwProcessor:
    """Build a processor from a four-digit name like ``"4221"``.

    Extra keyword arguments are forwarded to
    :func:`repro.machine.processor.make_processor` (e.g. register-file
    overrides or feature flags).
    """
    match = _NAME_RE.match(name)
    if not match:
        raise ConfigurationError(
            f"processor name {name!r} is not four digits (e.g. '3221')"
        )
    counts = [int(g) for g in match.groups()]
    if any(c == 0 for c in counts):
        raise ConfigurationError(
            f"processor name {name!r} has a zero unit count"
        )
    return make_processor(*counts, **kwargs)  # type: ignore[arg-type]
