"""VLIW processor design space (Section 3.1 of the paper).

A :class:`~repro.machine.processor.VliwProcessor` is parameterized by the
number of function units of each class, register-file sizes, and whether it
supports predication and speculation.  :mod:`repro.machine.presets` provides
the five processors used throughout the paper's evaluation (1111 reference,
2111, 3221, 4221, 6332).
"""

from repro.machine.accelerator import (
    SystolicArray,
    accelerated_cycles,
    accelerator_cost,
)
from repro.machine.cost import processor_cost
from repro.machine.mdes import MachineDescription, default_latencies
from repro.machine.processor import VliwProcessor
from repro.machine.presets import (
    P1111,
    P2111,
    P3221,
    P4221,
    P6332,
    PAPER_PROCESSORS,
    REFERENCE_PROCESSOR,
    TARGET_PROCESSORS,
    processor_from_name,
)

__all__ = [
    "VliwProcessor",
    "SystolicArray",
    "accelerator_cost",
    "accelerated_cycles",
    "MachineDescription",
    "default_latencies",
    "processor_cost",
    "P1111",
    "P2111",
    "P3221",
    "P4221",
    "P6332",
    "PAPER_PROCESSORS",
    "REFERENCE_PROCESSOR",
    "TARGET_PROCESSORS",
    "processor_from_name",
]
