"""Processor area/cost model.

The spacewalker needs a scalar cost for every candidate design (Figure 2:
each design is plotted on a cost/performance graph).  The paper computes
cost inside its synthesis system; we use a transparent additive gate-count
style model.  Absolute units are arbitrary ("cost units"); only relative
ordering matters for Pareto accumulation, which is all the paper uses
cost for.
"""

from __future__ import annotations

from repro.isa.operations import OpClass
from repro.machine.processor import VliwProcessor

#: Relative area of one function unit, in cost units.
_UNIT_AREA = {
    OpClass.INT: 1.0,
    OpClass.FLOAT: 3.0,  # FP datapaths are several times an integer ALU
    OpClass.MEMORY: 1.5,  # address generation + load/store queue slot
    OpClass.BRANCH: 0.8,
}

#: Area per register, per read/write port pair it must support.
_REG_AREA = 0.004

#: Fixed overhead: fetch, decode, control.
_BASE_AREA = 2.0


def processor_cost(processor: VliwProcessor) -> float:
    """Area cost of a processor in arbitrary cost units.

    Function units contribute linearly; register files contribute
    ``size * ports`` where the port count scales with issue width (every
    unit needs operand bandwidth), capturing the superlinear growth of
    multiported register files that makes very wide machines expensive.
    """
    unit_area = sum(
        _UNIT_AREA[cls] * count for cls, count in processor.units.items()
    )
    ports = 2 * processor.issue_width + 1
    regfile_area = _REG_AREA * ports * (
        processor.int_registers + 2 * processor.fp_registers
    )
    feature_area = 0.0
    if processor.has_predication:
        feature_area += 0.5 + _REG_AREA * ports * processor.pred_registers
    if processor.has_speculation:
        feature_area += 0.3
    return _BASE_AREA + unit_area + regfile_area + feature_area
