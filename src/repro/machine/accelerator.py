"""Optional non-programmable systolic-array accelerator (Figure 1).

The paper's design space includes "an optional hardware accelerator in
the form of a non-programmable systolic array" whose performance, like
the processor's, is "estimated using schedule lengths and profile
statistics" (Section 3.2).  The paper does not evaluate accelerators
further; this module completes the Figure-1 design space with the same
estimation style:

* an accelerator targets one operation class (typically FLOAT or INT)
  and offloads a configurable fraction of the hot loops' work;
* offloaded operations execute at ``II`` (initiation interval) cycles
  per result on a ``depth``-stage array, instead of occupying processor
  issue slots;
* cost scales with the processing-element count.

Used by :func:`accelerated_cycles` to adjust a compiled program's
processor-cycle estimate, and by the spacewalker examples to explore
with/without-accelerator designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.isa.operations import OpClass

if TYPE_CHECKING:  # break the machine -> vliwcomp -> machine import cycle
    from repro.trace.events import EventTrace
    from repro.vliwcomp.compile import CompiledProgram

#: Cost units per processing element (multiplier-accumulator scale).
_PE_COST = 0.6

#: Fixed control/interface overhead, in cost units.
_BASE_COST = 1.5


@dataclass(frozen=True)
class SystolicArray:
    """A non-programmable accelerator specification.

    Parameters
    ----------
    name:
        Display name.
    target:
        Operation class the array executes.
    rows / cols:
        Processing-element grid dimensions.
    initiation_interval:
        Cycles between successive results once the pipeline is primed.
    offload_fraction:
        Fraction of the application's target-class operations mapped
        onto the array (the paper's synthesis system would derive this
        from the loop nests; here it is a design parameter).
    """

    name: str
    target: OpClass
    rows: int = 4
    cols: int = 4
    initiation_interval: int = 1
    offload_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("array dimensions must be >= 1")
        if self.initiation_interval < 1:
            raise ConfigurationError("initiation interval must be >= 1")
        if not 0.0 <= self.offload_fraction <= 1.0:
            raise ConfigurationError(
                f"offload fraction must be in [0, 1], got "
                f"{self.offload_fraction}"
            )

    @property
    def processing_elements(self) -> int:
        return self.rows * self.cols

    @property
    def pipeline_depth(self) -> int:
        """Stages a datum traverses: the longer grid dimension."""
        return max(self.rows, self.cols)


def accelerator_cost(array: SystolicArray) -> float:
    """Area cost in the same units as processor/cache costs."""
    pe_cost = _PE_COST * array.processing_elements
    if array.target is OpClass.FLOAT:
        pe_cost *= 2.0  # FP PEs are bigger
    return _BASE_COST + pe_cost


def accelerated_cycles(
    compiled: CompiledProgram,
    events: EventTrace,
    array: SystolicArray,
) -> int:
    """Processor-cycle estimate with part of the work offloaded.

    Offloaded operations leave the VLIW schedule; the block's issue
    cycles shrink proportionally to the removed fraction of its
    operations (bounded below by 1 cycle — control never disappears).
    The array runs concurrently: its own time,
    ``offloaded / PEs * II`` plus one pipeline fill, is overlapped with
    the processor and charged where it exceeds the shrunken block time
    (the classic "max of producer and consumer" systolic bound).
    Blocks where offloading loses (the pipeline fill dominating a short
    block) are kept on the processor — a synthesis system maps only
    profitable loops onto the array — so the estimate never exceeds the
    plain schedule-length estimate.
    """
    frequencies = events.visit_frequencies()
    total = 0
    for index, count in enumerate(frequencies.tolist()):
        if not count:
            continue
        proc_name, block_id = events.blocks[index]
        cblock = compiled.block(proc_name, block_id)
        n_ops = len(cblock.operations)
        n_target = sum(
            1 for op in cblock.operations if op.opclass is array.target
        )
        offloaded = int(n_target * array.offload_fraction)
        if n_ops == 0 or offloaded == 0:
            total += count * cblock.issue_cycles
            continue
        shrink = 1.0 - offloaded / n_ops
        cpu_cycles = max(1, round(cblock.issue_cycles * shrink))
        array_cycles = (
            offloaded * array.initiation_interval
        ) / array.processing_elements + array.pipeline_depth
        offloaded_time = max(cpu_cycles, round(array_cycles))
        total += count * min(cblock.issue_cycles, offloaded_time)
    return total
