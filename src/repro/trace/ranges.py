"""Range traces: the compact address-trace representation.

A range trace is a sequence of byte ranges ``[start, start + size)``, each
tagged as an instruction or data access.  An instruction basic-block visit
is one range covering the block's bytes; a data reference is a one-word
range.  Touching the lines a range overlaps once each, in order, is
miss-equivalent to touching every word (consecutive words of a line hit
the already-most-recently-used line without changing LRU state), so the
cache simulators consume ranges directly — orders of magnitude fewer
Python-level iterations than a word-by-word trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.config import WORD_BYTES
from repro.cache.linestream import LineStream, expand_lines, line_stream
from repro.errors import TraceError

#: Kind tags.  Data reads and writes are distinct kinds so write-policy
#: simulation can tell them apart; consumers that only care about the
#: instruction/data split treat every non-instruction kind as data.
KIND_INSTR: int = 0
KIND_DATA: int = 1
KIND_WRITE: int = 2


@dataclass(frozen=True)
class RangeTrace:
    """An immutable range trace.

    Attributes
    ----------
    starts / sizes:
        Parallel int64 arrays of byte offsets and byte lengths.
    kinds:
        Parallel uint8 array of :data:`KIND_INSTR` / :data:`KIND_DATA`
        tags.  Homogeneous traces (instruction-only, data-only) still
        carry the array so consumers never special-case.
    """

    starts: np.ndarray
    sizes: np.ndarray
    kinds: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.starts) == len(self.sizes) == len(self.kinds)):
            raise TraceError("starts, sizes and kinds must be equal length")
        if len(self.sizes) and int(self.sizes.min()) <= 0:
            raise TraceError("all range sizes must be positive")

    @classmethod
    def build(
        cls,
        starts: list[int] | np.ndarray,
        sizes: list[int] | np.ndarray,
        kinds: list[int] | np.ndarray | int,
    ) -> "RangeTrace":
        """Construct from lists; ``kinds`` may be a scalar tag."""
        starts_arr = np.asarray(starts, dtype=np.int64)
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        if isinstance(kinds, (int, np.integer)):
            kinds_arr = np.full(len(starts_arr), kinds, dtype=np.uint8)
        else:
            kinds_arr = np.asarray(kinds, dtype=np.uint8)
        return cls(starts_arr, sizes_arr, kinds_arr)

    @classmethod
    def empty(cls) -> "RangeTrace":
        return cls.build([], [], [])

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def total_bytes(self) -> int:
        """Sum of range sizes (the trace 'volume')."""
        return int(self.sizes.sum()) if len(self) else 0

    @property
    def total_words(self) -> int:
        """Word references the trace represents when fully expanded."""
        if not len(self):
            return 0
        first = self.starts // WORD_BYTES
        last = (self.starts + self.sizes - 1) // WORD_BYTES
        return int((last - first + 1).sum())

    def line_accesses(self, line_size: int) -> int:
        """Line touches a simulator with ``line_size``-byte lines performs."""
        if not len(self):
            return 0
        first = self.starts // line_size
        last = (self.starts + self.sizes - 1) // line_size
        return int((last - first + 1).sum())

    def component(self, kind: int) -> "RangeTrace":
        """Sub-trace of one exact kind, order preserved."""
        mask = self.kinds == kind
        return RangeTrace(
            self.starts[mask], self.sizes[mask], self.kinds[mask]
        )

    @property
    def instruction_component(self) -> "RangeTrace":
        return self.component(KIND_INSTR)

    @property
    def data_component(self) -> "RangeTrace":
        """Every data access — reads and writes alike."""
        mask = self.kinds != KIND_INSTR
        return RangeTrace(
            self.starts[mask], self.sizes[mask], self.kinds[mask]
        )

    @property
    def write_component(self) -> "RangeTrace":
        return self.component(KIND_WRITE)

    def head(self, n_ranges: int) -> "RangeTrace":
        """Initial segment of the trace (used by sampling)."""
        return RangeTrace(
            self.starts[:n_ranges], self.sizes[:n_ranges], self.kinds[:n_ranges]
        )

    def word_addresses(self) -> np.ndarray:
        """Expand to the full word-address stream (AHH parameter input).

        Memory-proportional to the expanded length; intended for granule
        processing, not for cache simulation.  Delegates to the
        vectorized expansion kernel shared with the cache simulators.
        """
        if not len(self):
            return np.empty(0, dtype=np.int64)
        return expand_lines(self.starts, self.sizes, WORD_BYTES)

    def line_stream(self, line_size: int) -> LineStream:
        """Memoized expanded + MRU-collapsed line stream for this trace.

        One expansion per (trace, line size) is shared by every consumer
        (all stack families of a single-pass simulation, repeated sweep
        passes, the direct simulator).
        """
        return line_stream(self.starts, self.sizes, line_size)

    @staticmethod
    def concatenate(traces: list["RangeTrace"]) -> "RangeTrace":
        if not traces:
            return RangeTrace.empty()
        return RangeTrace(
            np.concatenate([t.starts for t in traces]),
            np.concatenate([t.sizes for t in traces]),
            np.concatenate([t.kinds for t in traces]),
        )
