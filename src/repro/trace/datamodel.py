"""Data-address stream models.

Every memory operation in a program names a *stream*; a stream is a region
of the data segment with a characteristic access pattern.  Four patterns
cover the locality spectrum of the paper's multimedia/SPEC workloads:

* ``sequential`` — unit-stride walks over a region (filters, copies);
* ``strided``    — fixed non-unit stride (column walks, subsampling);
* ``random``     — uniform references within the region (hash tables,
  pointer chasing);
* ``zipf``       — skewed references: a hot head of the region absorbs
  most accesses, a long tail the rest (symbol tables, caches of
  parsed objects);
* ``stack``      — references clustered near a moving top-of-stack with
  very high reuse (locals, spill traffic).

Streams draw from disjoint regions above :data:`DATA_BASE`, far from the
text segment, so instruction and data addresses never collide in unified
traces.  All per-stream state evolves deterministically from the stream
spec, independent of the processor — the foundation of the paper's
step-1 assumption that data traces match across processors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import WORD_BYTES
from repro.errors import ConfigurationError
from repro.vliwcomp.regalloc import SPILL_STREAM

#: Base of the data segment.
DATA_BASE = 0x1000_0000

#: Guard gap between stream regions.
_REGION_GAP = 4096

#: Region size of the implicit spill stream (small and hot).
_SPILL_REGION_BYTES = 512

_PATTERNS = ("sequential", "strided", "random", "zipf", "stack")


@dataclass(frozen=True)
class StreamSpec:
    """Static description of one data stream."""

    pattern: str
    region_bytes: int
    stride_bytes: int = WORD_BYTES

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ConfigurationError(
                f"unknown stream pattern {self.pattern!r}; "
                f"expected one of {_PATTERNS}"
            )
        if self.region_bytes < WORD_BYTES:
            raise ConfigurationError(
                f"region must be at least one word, got {self.region_bytes}"
            )
        if self.stride_bytes < WORD_BYTES or self.stride_bytes % WORD_BYTES:
            raise ConfigurationError(
                f"stride must be a positive multiple of {WORD_BYTES}, "
                f"got {self.stride_bytes}"
            )


class _Lcg:
    """Tiny deterministic generator (numerical recipes constants)."""

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def next_u32(self) -> int:
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state


class DataAddressModel:
    """Stateful generator of data addresses for a program's streams.

    Regions are assigned in ascending stream-id order starting at
    :data:`DATA_BASE`; the spill stream (:data:`SPILL_STREAM`) always
    exists and sits below the first ordinary region.
    """

    def __init__(self, streams: dict[int, StreamSpec], seed: int = 1):
        self._specs: dict[int, StreamSpec] = {
            SPILL_STREAM: StreamSpec("stack", _SPILL_REGION_BYTES)
        }
        self._specs.update(streams)
        if any(sid < 0 and sid != SPILL_STREAM for sid in streams):
            raise ConfigurationError(
                "negative stream ids are reserved for the spill stream"
            )
        self._bases: dict[int, int] = {}
        cursor = DATA_BASE
        for sid in sorted(self._specs):
            self._bases[sid] = cursor
            cursor += _round_up(self._specs[sid].region_bytes) + _REGION_GAP
        self._positions: dict[int, int] = {sid: 0 for sid in self._specs}
        self._rngs: dict[int, _Lcg] = {
            sid: _Lcg(seed ^ (sid & 0xFFFF)) for sid in self._specs
        }
        self._last: dict[int, int] = {}

    def spec(self, stream: int) -> StreamSpec:
        """The static description of ``stream`` (raises if unknown)."""
        try:
            return self._specs[stream]
        except KeyError:
            raise ConfigurationError(f"unknown stream id {stream}") from None

    def region_base(self, stream: int) -> int:
        """Base byte address of the stream's region."""
        self.spec(stream)
        return self._bases[stream]

    def next_address(self, stream: int) -> int:
        """Advance the stream and return the next byte address."""
        spec = self.spec(stream)
        base = self._bases[stream]
        words = spec.region_bytes // WORD_BYTES
        if spec.pattern in ("sequential", "strided"):
            pos = self._positions[stream]
            addr = base + (pos % spec.region_bytes)
            self._positions[stream] = (
                pos + spec.stride_bytes
            ) % spec.region_bytes
        elif spec.pattern == "random":
            word = self._rngs[stream].next_u32() % words
            addr = base + word * WORD_BYTES
        elif spec.pattern == "zipf":
            addr = base + _zipf_word(self._rngs[stream], words) * WORD_BYTES
        else:  # stack
            # Top-of-stack random walk over a hot window of ~32 words.
            window = min(32, words)
            rng = self._rngs[stream]
            step = (rng.next_u32() % 3) - 1  # -1, 0, +1
            pos = (self._positions[stream] + step) % max(1, words - window)
            self._positions[stream] = pos
            offset = rng.next_u32() % window
            addr = base + (pos + offset) * WORD_BYTES
        addr &= ~(WORD_BYTES - 1)
        self._last[stream] = addr
        return addr

    def last_address(self, stream: int) -> int:
        """Most recent address of the stream, without advancing.

        Falls back to the region base before any reference occurs.
        """
        return self._last.get(stream, self.region_base(stream))

    def peek_next_address(self, stream: int) -> int:
        """The address :meth:`next_address` *would* return, without
        advancing any stream state.

        Models a speculative (hoisted) load: it reads the address the
        successor block's load will read.  When the branch goes the
        predicted way the real load re-touches the line (a hit); when it
        does not, the speculative reference was an extra, possibly
        missing, touch — exactly the perturbation Section 4.1 ascribes to
        speculation.
        """
        spec = self.spec(stream)
        base = self._bases[stream]
        words = spec.region_bytes // WORD_BYTES
        if spec.pattern in ("sequential", "strided"):
            addr = base + (self._positions[stream] % spec.region_bytes)
        elif spec.pattern == "random":
            shadow = _Lcg(0)
            shadow.state = self._rngs[stream].state
            addr = base + (shadow.next_u32() % words) * WORD_BYTES
        elif spec.pattern == "zipf":
            shadow = _Lcg(0)
            shadow.state = self._rngs[stream].state
            addr = base + _zipf_word(shadow, words) * WORD_BYTES
        else:  # stack
            window = min(32, words)
            shadow = _Lcg(0)
            shadow.state = self._rngs[stream].state
            step = (shadow.next_u32() % 3) - 1
            pos = (self._positions[stream] + step) % max(1, words - window)
            offset = shadow.next_u32() % window
            addr = base + (pos + offset) * WORD_BYTES
        return addr & ~(WORD_BYTES - 1)

    def wrong_path_address(self, stream: int) -> int:
        """An address a *mispredicted* speculative load would touch.

        The not-taken path typically works on a different part of the
        stream's data: far ahead in a sequential walk, an independent
        draw in a scattered structure, a nearby slot on the stack.  Like
        :meth:`peek_next_address`, no stream state advances — the real
        path's addresses are unperturbed.
        """
        spec = self.spec(stream)
        base = self._bases[stream]
        words = spec.region_bytes // WORD_BYTES
        if spec.pattern in ("sequential", "strided"):
            # Several dozen strides ahead: same-structure data the
            # committed walk reaches only later.  In a large cache the
            # early touch behaves like a prefetch (the walk re-hits the
            # line); in a small cache the line is evicted before use and
            # the speculation costs real misses — matching the paper's
            # observation that the small data cache suffers far more.
            offset = (
                self._positions[stream] + 64 * spec.stride_bytes
            ) % spec.region_bytes
            addr = base + offset
        elif spec.pattern in ("random", "zipf"):
            shadow = _Lcg(0)
            shadow.state = (self._rngs[stream].state ^ 0x9E3779B9) & 0xFFFFFFFF
            if spec.pattern == "zipf":
                addr = base + _zipf_word(shadow, words) * WORD_BYTES
            else:
                addr = base + (shadow.next_u32() % words) * WORD_BYTES
        else:  # stack: the not-taken path still works near the top
            return self.peek_next_address(stream)
        return addr & ~(WORD_BYTES - 1)


def _zipf_word(rng: _Lcg, words: int) -> int:
    """A zipf-like word index: square a uniform draw to skew toward 0.

    P(index < k) = sqrt(k / words): the hottest 1% of the region absorbs
    ~10% of accesses — a cheap deterministic approximation of zipfian
    popularity that needs no per-stream tables.
    """
    u = rng.next_u32() / 0x1_0000_0000
    return int(u * u * words) % max(1, words)


def _round_up(value: int, quantum: int = 64) -> int:
    return (value + quantum - 1) // quantum * quantum
