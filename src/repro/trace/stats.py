"""Trace statistics: footprints, working sets and miss curves.

Analysis utilities a memory-hierarchy study needs around the core model:
address footprints, unique lines as a function of line size (the measured
counterpart of the AHH u(L) formula), working-set growth over granules,
and miss-rate-versus-capacity curves computed with the single-pass
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import WORD_BYTES, CacheConfig
from repro.errors import TraceError
from repro.trace.ranges import RangeTrace


@dataclass(frozen=True)
class TraceSummary:
    """Headline numbers of one range trace."""

    n_ranges: int
    total_words: int
    footprint_bytes: int
    unique_words: int

    @property
    def reuse_factor(self) -> float:
        """Word references per unique word (>= 1 for non-empty traces)."""
        if self.unique_words == 0:
            return 0.0
        return self.total_words / self.unique_words


def summarize(trace: RangeTrace) -> TraceSummary:
    """Compute the headline numbers of a trace."""
    if not len(trace):
        return TraceSummary(0, 0, 0, 0)
    words = trace.word_addresses()
    unique = np.unique(words)
    footprint = int((unique[-1] - unique[0] + 1) * WORD_BYTES)
    return TraceSummary(
        n_ranges=len(trace),
        total_words=int(words.size),
        footprint_bytes=footprint,
        unique_words=int(unique.size),
    )


def measured_unique_lines(
    trace: RangeTrace, line_sizes: list[int]
) -> dict[int, int]:
    """Unique cache lines touched, per line size.

    The whole-trace measured analogue of the AHH per-granule u(L); used
    to sanity-check the analytic formula against reality.
    """
    words = trace.word_addresses()
    out: dict[int, int] = {}
    for line_size in line_sizes:
        if line_size < WORD_BYTES or line_size % WORD_BYTES:
            raise TraceError(
                f"line size must be a multiple of {WORD_BYTES}, "
                f"got {line_size}"
            )
        line_words = line_size // WORD_BYTES
        out[line_size] = int(np.unique(words // line_words).size)
    return out


def working_set_curve(
    trace: RangeTrace, granule_words: int
) -> list[int]:
    """Unique words per granule of ``granule_words`` references.

    Section 5.2's granule-sizing guidance is about this curve flattening;
    the ablation bench sweeps it.
    """
    if granule_words < 1:
        raise TraceError("granule must be at least one reference")
    words = trace.word_addresses()
    out: list[int] = []
    for start in range(0, words.size, granule_words):
        chunk = words[start : start + granule_words]
        if chunk.size < granule_words // 2 and out:
            break  # drop a short tail, as the AHH accumulator does
        out.append(int(np.unique(chunk).size))
    return out


def miss_curve(
    trace: RangeTrace,
    line_size: int,
    assoc: int,
    sizes_kb: list[float],
) -> dict[float, float]:
    """Miss rate versus capacity, one single-pass simulation.

    All capacities share the line size and associativity, so a single
    Cheetah pass with the union of set counts answers every point.
    """
    set_counts = []
    for size_kb in sizes_kb:
        size = int(size_kb * 1024)
        if size % (assoc * line_size):
            raise TraceError(
                f"{size_kb}KB not divisible by assoc*line = "
                f"{assoc * line_size}"
            )
        sets = size // (assoc * line_size)
        CacheConfig(sets, assoc, line_size)  # validates power of two
        set_counts.append(sets)
    sim = CheetahSimulator(line_size, sorted(set(set_counts)), assoc)
    sim.simulate(trace.starts, trace.sizes)
    out: dict[float, float] = {}
    for size_kb, sets in zip(sizes_kb, set_counts):
        misses = sim.misses(sets, assoc)
        out[size_kb] = misses / sim.accesses if sim.accesses else 0.0
    return out
