"""Trace sampling: first-N truncation and interval sampling.

The paper's Section 5.2 allows "sampling an initial segment of the trace"
for faster evaluation (:func:`sample_events`, the original behaviour).
Initial segments are cheap but unrepresentative for long executions —
program phases far from the start never contribute.  The interval layer
here instead selects ``k`` fixed-size **windows** spread across the whole
trace ("Improving the Representativeness of Simulation Intervals for the
Cache Memory System", arXiv 2402.00649): each window carries a *warm-up*
prefix whose references prime the simulator's LRU state but are excluded
from the measured counts, mitigating the cold-start bias that makes naive
window sampling over-count misses.  Consumers simulate only the sampled
windows and extrapolate totals by the sampled fraction, with a
cross-interval error estimate (:func:`extrapolate`).

This module owns the *selection and estimation* math, which is pure index
arithmetic — the simulation of the windows lives with the engines
(:func:`repro.cache.sweep.sampled_sweep_design_space`,
:func:`repro.cache.simulator.simulate_trace`).  Windows address *ranges*
(the unit every engine consumes), so the same plan drives in-memory
arrays and :class:`~repro.trace.chunkstore.ChunkedTrace` readers alike —
a sampled run over a chunked trace touches only the chunks its windows
overlap.

``mode="first"`` degenerates to the original first-N truncation (one
contiguous prefix, no extrapolation bias correction beyond the fraction
scale) and is oracle-tested against :func:`sample_events`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.events import EventTrace

#: Window placement modes.
SAMPLE_MODES = ("first", "uniform", "strided")


def _check_offsets(events: EventTrace) -> np.ndarray:
    """Validate the visit offset index before any slicing uses it.

    A malformed (non-monotonic, or out-of-bounds) ``data_offsets`` would
    make window slices silently overlap or reverse; surface it as a
    :class:`~repro.errors.TraceError` instead.
    """
    offsets = events.data_offsets
    if len(offsets) == 0 or int(offsets[0]) != 0:
        raise TraceError("data_offsets must start at 0")
    if len(offsets) > 1 and int(np.diff(offsets).min()) < 0:
        raise TraceError("data_offsets must be monotonically non-decreasing")
    if int(offsets[-1]) > len(events.data_addrs):
        raise TraceError("data_offsets exceeds the data reference arrays")
    return offsets


def sample_events(events: EventTrace, max_visits: int) -> EventTrace:
    """Truncate an event trace to its first ``max_visits`` block visits.

    Returns the original trace unchanged when it is already short enough
    (mirroring the paper's behaviour of simulating to completion when the
    sampling limit is not reached, in which case result checking stays
    enabled).  This is the trivial ``mode="first"`` case of the interval
    layer, kept as its oracle.
    """
    if max_visits < 1:
        raise TraceError(f"max_visits must be >= 1, got {max_visits}")
    offsets = _check_offsets(events)
    if events.n_visits <= max_visits:
        return events
    cut = int(offsets[max_visits])
    return EventTrace(
        blocks=events.blocks,
        visit_blocks=events.visit_blocks[:max_visits],
        data_addrs=events.data_addrs[:cut],
        data_streams=events.data_streams[:cut],
        data_offsets=offsets[: max_visits + 1],
        data_writes=events.data_writes[:cut],
    )


@dataclass(frozen=True)
class SamplePlan:
    """How to pick simulation intervals out of a long trace.

    Attributes
    ----------
    intervals:
        Number of measured windows.
    interval_ranges:
        Length of each measured window, in trace units (ranges for range
        traces, block visits for event traces).
    warmup_ranges:
        Units simulated *before* each window to prime LRU state; their
        hits/misses are excluded from the measured counts.
    mode:
        ``"uniform"`` spreads the windows evenly across the trace
        (first at the start, last flush with the end); ``"strided"``
        places them every ``stride_ranges`` units from the start;
        ``"first"`` takes one contiguous prefix (the paper's original
        initial-segment sampling, split into ``intervals`` windows).
    stride_ranges:
        ``"strided"`` placement period; defaults to ``total //
        intervals`` (an even comb) when omitted.
    """

    intervals: int
    interval_ranges: int
    warmup_ranges: int = 0
    mode: str = "uniform"
    stride_ranges: int | None = None

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise TraceError(
                f"intervals must be >= 1, got {self.intervals}"
            )
        if self.interval_ranges < 1:
            raise TraceError(
                f"interval_ranges must be >= 1, got {self.interval_ranges}"
            )
        if self.warmup_ranges < 0:
            raise TraceError(
                f"warmup_ranges must be >= 0, got {self.warmup_ranges}"
            )
        if self.mode not in SAMPLE_MODES:
            raise TraceError(
                f"unknown sample mode {self.mode!r}; "
                f"expected one of {SAMPLE_MODES}"
            )
        if self.stride_ranges is not None and self.stride_ranges < 1:
            raise TraceError(
                f"stride_ranges must be >= 1, got {self.stride_ranges}"
            )

    @classmethod
    def from_spec(cls, spec: dict) -> "SamplePlan":
        """Build a plan from a JSON-style dict (service job specs)."""
        try:
            return cls(
                intervals=int(spec["intervals"]),
                interval_ranges=int(spec["interval_ranges"]),
                warmup_ranges=int(spec.get("warmup_ranges", 0)),
                mode=str(spec.get("mode", "uniform")),
                stride_ranges=(
                    int(spec["stride_ranges"])
                    if spec.get("stride_ranges") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed sample spec: {exc}") from exc

    def to_spec(self) -> dict:
        """JSON-representable form (inverse of :meth:`from_spec`)."""
        spec = {
            "intervals": self.intervals,
            "interval_ranges": self.interval_ranges,
            "warmup_ranges": self.warmup_ranges,
            "mode": self.mode,
        }
        if self.stride_ranges is not None:
            spec["stride_ranges"] = self.stride_ranges
        return spec


@dataclass(frozen=True)
class SampleWindow:
    """One planned interval: ``[warm_lo, lo)`` warms, ``[lo, hi)`` counts."""

    warm_lo: int
    lo: int
    hi: int

    @property
    def measured(self) -> int:
        return self.hi - self.lo


def plan_windows(total: int, plan: SamplePlan) -> list[SampleWindow]:
    """Place the plan's windows over a trace of ``total`` units.

    Windows are clipped to the trace, deduplicated and returned in
    ascending order; they never overlap (placements that would are
    advanced past the previous window's end).  A trace shorter than one
    window yields a single whole-trace window — sampling a trace that
    already fits is just simulating it.
    """
    if total < 0:
        raise TraceError(f"total must be >= 0, got {total}")
    if total == 0:
        return []
    length = plan.interval_ranges
    if plan.mode == "first" or total <= length:
        span = min(total, plan.intervals * length)
        out = []
        for lo in range(0, span, length):
            out.append(
                SampleWindow(
                    warm_lo=max(0, lo - plan.warmup_ranges),
                    lo=lo,
                    hi=min(span, lo + length),
                )
            )
        return out
    if plan.mode == "strided":
        stride = plan.stride_ranges or max(1, total // plan.intervals)
        raw = [i * stride for i in range(plan.intervals)]
    else:  # uniform
        if plan.intervals == 1:
            raw = [(total - length) // 2]  # a single centred window
        else:
            span = total - length
            raw = [
                round(i * span / (plan.intervals - 1))
                for i in range(plan.intervals)
            ]
    windows: list[SampleWindow] = []
    cursor = 0
    for lo in raw:
        lo = max(lo, cursor)
        if lo >= total:
            break
        hi = min(total, lo + length)
        windows.append(
            SampleWindow(
                warm_lo=max(0, lo - plan.warmup_ranges), lo=lo, hi=hi
            )
        )
        cursor = hi
    return windows


def sample_events_plan(events: EventTrace, plan: SamplePlan) -> EventTrace:
    """Concatenate the plan's measured windows of an event trace.

    Windows address block visits; each window's visits bring their data
    references along.  With ``mode="first"`` this is exactly
    :func:`sample_events` of ``intervals * interval_ranges`` visits —
    the property the tests pin.
    """
    offsets = _check_offsets(events)
    windows = plan_windows(events.n_visits, plan)
    if not windows:
        return events
    if (
        len(windows) >= 1
        and windows[0].lo == 0
        and windows[-1].hi == events.n_visits
        and all(
            w.lo == prev.hi for prev, w in zip(windows, windows[1:])
        )
    ):
        return events  # plan covers everything contiguously
    visit_parts, addr_parts, stream_parts, write_parts = [], [], [], []
    counts_parts = []
    for w in windows:
        cut_lo, cut_hi = int(offsets[w.lo]), int(offsets[w.hi])
        visit_parts.append(events.visit_blocks[w.lo : w.hi])
        addr_parts.append(events.data_addrs[cut_lo:cut_hi])
        stream_parts.append(events.data_streams[cut_lo:cut_hi])
        write_parts.append(events.data_writes[cut_lo:cut_hi])
        counts_parts.append(np.diff(offsets[w.lo : w.hi + 1]))
    counts = (
        np.concatenate(counts_parts)
        if counts_parts
        else np.empty(0, dtype=np.int64)
    )
    new_offsets = np.concatenate(
        ([0], np.cumsum(counts, dtype=np.int64))
    )
    return EventTrace(
        blocks=events.blocks,
        visit_blocks=np.concatenate(visit_parts),
        data_addrs=np.concatenate(addr_parts),
        data_streams=np.concatenate(stream_parts),
        data_offsets=new_offsets,
        data_writes=np.concatenate(write_parts),
    )


@dataclass(frozen=True)
class SampledEstimate:
    """Extrapolated totals from a set of simulated intervals.

    ``error`` is the relative standard error of the miss estimate across
    intervals (sample std of per-interval miss densities over sqrt(k),
    relative to the mean density); ``None`` when fewer than two intervals
    were measured or no misses occurred — there is no spread to estimate
    from.
    """

    misses: int
    accesses: int
    error: float | None
    intervals: int
    sampled_ranges: int
    total_ranges: int

    @property
    def sampled_fraction(self) -> float:
        if self.total_ranges == 0:
            return 1.0
        return self.sampled_ranges / self.total_ranges


def extrapolate(
    per_interval: list[tuple[int, int, int]], total_ranges: int
) -> SampledEstimate:
    """Scale per-interval ``(ranges, accesses, misses)`` to the full trace.

    The estimator is the sampled-fraction scale: totals over the measured
    windows divided by the fraction of the trace they cover.  The error
    bar comes from the spread of per-interval miss densities.
    """
    if not per_interval:
        raise TraceError("cannot extrapolate from zero intervals")
    sampled_ranges = sum(r for r, _, _ in per_interval)
    if sampled_ranges == 0:
        raise TraceError("cannot extrapolate from empty intervals")
    if total_ranges < sampled_ranges:
        raise TraceError(
            f"total_ranges {total_ranges} < sampled {sampled_ranges}"
        )
    accesses = sum(a for _, a, _ in per_interval)
    misses = sum(m for _, _, m in per_interval)
    scale = total_ranges / sampled_ranges
    densities = [m / r for r, _, m in per_interval if r > 0]
    error: float | None = None
    mean = misses / sampled_ranges
    if len(densities) >= 2 and mean > 0:
        spread = float(np.std(densities, ddof=1)) / np.sqrt(len(densities))
        error = spread / mean
    return SampledEstimate(
        misses=round(misses * scale),
        accesses=round(accesses * scale),
        error=error,
        intervals=len(per_interval),
        sampled_ranges=sampled_ranges,
        total_ranges=total_ranges,
    )
