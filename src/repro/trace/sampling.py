"""Initial-segment trace sampling (Section 5.2).

"In order to permit faster evaluation, we also allow sampling an initial
segment of the trace to evaluate memory hierarchy performance."  Sampling
operates on the event trace so that every derived address trace
(instruction, data, unified, dilated) sees the same truncated execution.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.trace.events import EventTrace


def sample_events(events: EventTrace, max_visits: int) -> EventTrace:
    """Truncate an event trace to its first ``max_visits`` block visits.

    Returns the original trace unchanged when it is already short enough
    (mirroring the paper's behaviour of simulating to completion when the
    sampling limit is not reached, in which case result checking stays
    enabled).
    """
    if max_visits < 1:
        raise TraceError(f"max_visits must be >= 1, got {max_visits}")
    if events.n_visits <= max_visits:
        return events
    cut = int(events.data_offsets[max_visits])
    return EventTrace(
        blocks=events.blocks,
        visit_blocks=events.visit_blocks[:max_visits],
        data_addrs=events.data_addrs[:cut],
        data_streams=events.data_streams[:cut],
        data_offsets=events.data_offsets[: max_visits + 1],
        data_writes=events.data_writes[:cut],
    )
