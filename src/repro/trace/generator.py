"""Trace generator: event trace + linked binary -> address traces.

Symbolically replays the event trace through a processor's binary
(Section 3.3): each block-enter event becomes the instruction byte range
the block occupies in that binary; data events pass through unchanged.
The generator "is configurable to create instruction, data, or joint
instruction/data traces as needed".
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import WORD_BYTES
from repro.errors import TraceError
from repro.iformat.linker import Binary
from repro.trace.events import EventTrace
from repro.trace.ranges import KIND_DATA, KIND_INSTR, KIND_WRITE, RangeTrace


class TraceGenerator:
    """Bind an event trace to one processor's binary."""

    def __init__(self, binary: Binary, events: EventTrace):
        self.binary = binary
        self.events = events
        # Per block-table entry: (start, size) in this binary.
        starts = np.empty(len(events.blocks), dtype=np.int64)
        sizes = np.empty(len(events.blocks), dtype=np.int64)
        for index, (proc_name, block_id) in enumerate(events.blocks):
            try:
                start, size = binary.block_range(proc_name, block_id)
            except KeyError:
                raise TraceError(
                    f"binary {binary.program_name!r}/"
                    f"{binary.processor_name!r} lacks block "
                    f"({proc_name!r}, {block_id})"
                ) from None
            starts[index] = start
            sizes[index] = size
        self._block_starts = starts
        self._block_sizes = sizes

    def instruction_trace(self) -> RangeTrace:
        """One range per block visit, covering the block's text bytes."""
        visits = self.events.visit_blocks
        return RangeTrace.build(
            self._block_starts[visits],
            self._block_sizes[visits],
            KIND_INSTR,
        )

    def data_trace(self) -> RangeTrace:
        """One word-sized range per data reference; stores are tagged."""
        addrs = self.events.data_addrs
        kinds = np.where(
            self.events.data_writes, KIND_WRITE, KIND_DATA
        ).astype(np.uint8)
        return RangeTrace(
            addrs.astype(np.int64),
            np.full(len(addrs), WORD_BYTES, dtype=np.int64),
            kinds,
        )

    def unified_trace(self) -> RangeTrace:
        """Joint trace: each visit's instruction range then its data refs."""
        events = self.events
        n_visits = events.n_visits
        n_data = events.n_data_refs
        total = n_visits + n_data
        starts = np.empty(total, dtype=np.int64)
        sizes = np.empty(total, dtype=np.int64)
        kinds = np.empty(total, dtype=np.uint8)

        # Each visit contributes 1 instruction range followed by its data
        # count; compute the output index of every visit's instruction
        # range, then scatter.
        data_counts = np.diff(events.data_offsets)
        instr_pos = np.arange(n_visits) + np.concatenate(
            ([0], np.cumsum(data_counts)[:-1])
        )
        starts[instr_pos] = self._block_starts[events.visit_blocks]
        sizes[instr_pos] = self._block_sizes[events.visit_blocks]
        kinds[instr_pos] = KIND_INSTR

        data_mask = np.ones(total, dtype=bool)
        data_mask[instr_pos] = False
        starts[data_mask] = events.data_addrs
        sizes[data_mask] = WORD_BYTES
        kinds[data_mask] = np.where(
            events.data_writes, KIND_WRITE, KIND_DATA
        ).astype(np.uint8)
        return RangeTrace(starts, sizes, kinds)
