"""Trace persistence: save/load event and range traces as ``.npz``.

Trace generation (compile + emulate) is the expensive front of the
pipeline; persisting traces lets separate processes (or later sessions)
re-run cache studies without regenerating.  The format is a plain numpy
``.npz`` archive plus a small JSON block table, versioned for forward
compatibility.

Version 2 archives additionally store a blake2b digest over the payload
columns, verified on load; version 1 archives (no digest) still load.
Every load-path failure — missing file, truncated or corrupt zip, a
foreign ``.npz`` — surfaces as a :class:`~repro.errors.TraceError`
naming the offending path, never a raw ``zipfile``/``KeyError``.

For traces too large to hold in memory at all, see
:mod:`repro.trace.chunkstore`.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.events import EventTrace
from repro.trace.ranges import RangeTrace

#: Format version written into every archive.
FORMAT_VERSION = 2

#: Versions :func:`load_events` / :func:`load_range_trace` accept.
SUPPORTED_VERSIONS = (1, 2)

#: Archive columns hashed into the stored digest, per kind, in order.
_DIGEST_COLUMNS = {
    b"events": (
        "visit_blocks",
        "data_addrs",
        "data_streams",
        "data_offsets",
        "data_writes",
    ),
    b"ranges": ("starts", "sizes", "kinds"),
}


def _payload_digest(kind: bytes, columns) -> str:
    """blake2b-16 over the payload columns (length-prefixed, in order)."""
    h = hashlib.blake2b(digest_size=16)
    for name in _DIGEST_COLUMNS[kind]:
        arr = np.ascontiguousarray(columns[name])
        h.update(len(arr).to_bytes(8, "little"))
        h.update(arr.tobytes())
    return h.hexdigest()


def save_events(events: EventTrace, path: str | Path) -> Path:
    """Write an event trace to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blocks_json = json.dumps([list(key) for key in events.blocks])
    columns = {
        "visit_blocks": events.visit_blocks,
        "data_addrs": events.data_addrs,
        "data_streams": events.data_streams,
        "data_offsets": events.data_offsets,
        "data_writes": events.data_writes,
    }
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"events"),
        digest=np.bytes_(_payload_digest(b"events", columns).encode()),
        blocks=np.bytes_(blocks_json.encode()),
        **columns,
    )
    return path


def load_events(path: str | Path) -> EventTrace:
    """Read an event trace written by :func:`save_events`."""
    with _open(path) as archive:
        _check(archive, b"events", path)
        try:
            blocks_json = bytes(archive["blocks"]).decode()
            blocks = tuple(
                (str(name), int(block_id))
                for name, block_id in json.loads(blocks_json)
            )
            return EventTrace(
                blocks=blocks,
                visit_blocks=archive["visit_blocks"],
                data_addrs=archive["data_addrs"],
                data_streams=archive["data_streams"],
                data_offsets=archive["data_offsets"],
                data_writes=archive["data_writes"],
            )
        except TraceError:
            raise
        except Exception as exc:
            raise TraceError(
                f"{path}: corrupt event trace archive ({exc})"
            ) from exc


def save_range_trace(trace: RangeTrace, path: str | Path) -> Path:
    """Write a range trace to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = {
        "starts": trace.starts,
        "sizes": trace.sizes,
        "kinds": trace.kinds,
    }
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"ranges"),
        digest=np.bytes_(_payload_digest(b"ranges", columns).encode()),
        **columns,
    )
    return path


def load_range_trace(path: str | Path) -> RangeTrace:
    """Read a range trace written by :func:`save_range_trace`."""
    with _open(path) as archive:
        _check(archive, b"ranges", path)
        try:
            return RangeTrace(
                starts=archive["starts"],
                sizes=archive["sizes"],
                kinds=archive["kinds"],
            )
        except TraceError:
            raise
        except Exception as exc:
            raise TraceError(
                f"{path}: corrupt range trace archive ({exc})"
            ) from exc


def _open(path: str | Path):
    """``np.load`` with every failure mode mapped to :class:`TraceError`.

    A truncated or flipped-byte ``.npz`` raises raw ``zipfile.BadZipFile``
    / ``OSError`` / ``ValueError`` from deep inside numpy; callers should
    see one exception type with the path attached.
    """
    try:
        return np.load(Path(path))
    except FileNotFoundError as exc:
        raise TraceError(f"{path}: no such trace archive") from exc
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
        raise TraceError(
            f"{path}: corrupt or truncated trace archive ({exc})"
        ) from exc


def _check(archive, expected_kind: bytes, path) -> None:
    try:
        version = int(archive["version"])
        kind = bytes(archive["kind"])
    except (KeyError, zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
        raise TraceError(f"{path} is not a repro trace archive") from exc
    if version not in SUPPORTED_VERSIONS:
        raise TraceError(
            f"{path}: unsupported trace format version {version} "
            f"(expected one of {SUPPORTED_VERSIONS})"
        )
    if kind != expected_kind:
        raise TraceError(
            f"{path}: archive holds {kind.decode()!r}, "
            f"expected {expected_kind.decode()!r}"
        )
    if version >= 2:
        try:
            stored = bytes(archive["digest"]).decode()
            actual = _payload_digest(kind, archive)
        except (KeyError, zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
            raise TraceError(
                f"{path}: corrupt or truncated trace archive ({exc})"
            ) from exc
        if stored != actual:
            raise TraceError(
                f"{path}: payload digest mismatch (stored {stored}, "
                f"computed {actual}) — archive is corrupt"
            )
