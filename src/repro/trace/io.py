"""Trace persistence: save/load event and range traces as ``.npz``.

Trace generation (compile + emulate) is the expensive front of the
pipeline; persisting traces lets separate processes (or later sessions)
re-run cache studies without regenerating.  The format is a plain numpy
``.npz`` archive plus a small JSON block table, versioned for forward
compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.events import EventTrace
from repro.trace.ranges import RangeTrace

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_events(events: EventTrace, path: str | Path) -> Path:
    """Write an event trace to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blocks_json = json.dumps([list(key) for key in events.blocks])
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"events"),
        blocks=np.bytes_(blocks_json.encode()),
        visit_blocks=events.visit_blocks,
        data_addrs=events.data_addrs,
        data_streams=events.data_streams,
        data_offsets=events.data_offsets,
        data_writes=events.data_writes,
    )
    return path


def load_events(path: str | Path) -> EventTrace:
    """Read an event trace written by :func:`save_events`."""
    with np.load(Path(path)) as archive:
        _check(archive, b"events", path)
        blocks_json = bytes(archive["blocks"]).decode()
        blocks = tuple(
            (str(name), int(block_id))
            for name, block_id in json.loads(blocks_json)
        )
        return EventTrace(
            blocks=blocks,
            visit_blocks=archive["visit_blocks"],
            data_addrs=archive["data_addrs"],
            data_streams=archive["data_streams"],
            data_offsets=archive["data_offsets"],
            data_writes=archive["data_writes"],
        )


def save_range_trace(trace: RangeTrace, path: str | Path) -> Path:
    """Write a range trace to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"ranges"),
        starts=trace.starts,
        sizes=trace.sizes,
        kinds=trace.kinds,
    )
    return path


def load_range_trace(path: str | Path) -> RangeTrace:
    """Read a range trace written by :func:`save_range_trace`."""
    with np.load(Path(path)) as archive:
        _check(archive, b"ranges", path)
        return RangeTrace(
            starts=archive["starts"],
            sizes=archive["sizes"],
            kinds=archive["kinds"],
        )


def _check(archive, expected_kind: bytes, path) -> None:
    try:
        version = int(archive["version"])
        kind = bytes(archive["kind"])
    except KeyError as exc:
        raise TraceError(f"{path} is not a repro trace archive") from exc
    if version != FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported trace format version {version} "
            f"(expected {FORMAT_VERSION})"
        )
    if kind != expected_kind:
        raise TraceError(
            f"{path}: archive holds {kind.decode()!r}, "
            f"expected {expected_kind.decode()!r}"
        )
