"""Chunked, columnar, content-addressed on-disk range traces.

Every engine in the stack consumes *range traces* — parallel
``starts``/``sizes`` arrays — and until now a trace had to exist as one
in-memory numpy pair, capping trace length at RAM and forcing whole-array
pickling (or one big shm segment) to reach worker processes.  This module
is the streaming alternative: a single flat file holding the trace as a
sequence of fixed-size **chunks**, each chunk two independently encoded
columns, plus a JSON footer index, so that

* writers stream a trace of any length in bounded memory
  (:class:`ChunkedTraceWriter` buffers one chunk);
* readers (:class:`ChunkedTrace`) hand out one chunk's arrays at a time —
  the whole file is mapped with ``mmap`` on open, and with the ``raw``
  codec a chunk read is a zero-copy ``np.frombuffer`` view of the map;
* worker processes attach by **path**: a job ships the file path plus the
  footer-indexed offsets (a few hundred bytes), not the arrays, and the
  OS page cache shares the backing pages across every attached process;
* content is verifiable: each chunk records a blake2b digest of its raw
  column bytes (checked on every read), and the trace as a whole gets a
  content identity composed from the chunk digests (checked against the
  footer on open).

File layout::

    MAGIC | chunk 0 blob | chunk 1 blob | ... | footer JSON | u64 len | MAGIC

Each chunk blob is the ``starts`` column followed by the ``sizes``
column, each either raw little-endian int64 bytes (codec ``raw``) or
zlib-compressed (codec ``zlib``, the default — range traces compress
3-6x).  The footer records, per chunk, the file offset, the encoded byte
length of each column, the range count, and the chunk digest.

Identity: :attr:`ChunkedTrace.digest` is a blake2b over the ordered
per-chunk digests and range counts.  Two files holding the same ranges in
the same chunk geometry share a digest regardless of codec; re-chunking
changes it (the digest addresses the *store object*, not the abstract
sequence — exact-sequence equality across geometries would need a full
decode anyway).  :attr:`ChunkedTrace.trace_id` formats it like
:func:`repro.cache.sweep.trace_digest` (``chunked=<24 hex>``) for use as
a checkpoint/store key.

Every malformed-file condition — truncation, flipped bytes, bad magic,
foreign JSON — surfaces as :class:`~repro.errors.TraceError` naming the
offending path.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TraceError

#: Leading and trailing file magic (8 bytes each).
MAGIC = b"RPROCHT1"

#: Format version written into every footer.
FORMAT_VERSION = 1

#: Default ranges per chunk.  At int64 x 2 columns this is 4 MiB of raw
#: chunk payload — large enough that per-chunk engine overhead (carried
#: LRU state splicing, one value sort per batch) stays a few percent,
#: small enough that a reader's working set is trivially bounded.
DEFAULT_CHUNK_RANGES = 1 << 18

#: Column encodings.  ``zlib`` (default) trades a cheap inflate per read
#: for 3-6x smaller files; ``raw`` reads are zero-copy views of the mmap.
CODECS = ("zlib", "raw")

_COLUMNS = ("starts", "sizes")
_DTYPE = np.dtype("<i8")
_TAIL = struct.Struct("<Q8s")  # footer length + trailing magic


def _chunk_digest(starts_bytes: bytes, sizes_bytes: bytes) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(starts_bytes)
    digest.update(sizes_bytes)
    return digest.hexdigest()


def _combine_digests(chunks: list[dict]) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for chunk in chunks:
        digest.update(int(chunk["n"]).to_bytes(8, "little"))
        digest.update(bytes.fromhex(chunk["digest"]))
    return digest.hexdigest()


class ChunkedTraceWriter:
    """Stream a range trace into a chunked file in bounded memory.

    ``append`` accepts arrays of any length; full chunks are encoded and
    flushed as they fill, so writer residency is one chunk regardless of
    trace length.  ``close`` (or the context manager) writes the footer;
    an interrupted write leaves a file with no trailing magic, which
    :class:`ChunkedTrace` rejects as truncated.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        chunk_ranges: int = DEFAULT_CHUNK_RANGES,
        codec: str = "zlib",
    ):
        if chunk_ranges < 1:
            raise TraceError(
                f"chunk_ranges must be >= 1, got {chunk_ranges}"
            )
        if codec not in CODECS:
            raise TraceError(
                f"unknown chunk codec {codec!r}; expected one of {CODECS}"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.chunk_ranges = chunk_ranges
        self.codec = codec
        self._file = open(self.path, "wb")
        self._file.write(MAGIC)
        self._offset = len(MAGIC)
        self._chunks: list[dict] = []
        self._buf_starts: list[np.ndarray] = []
        self._buf_sizes: list[np.ndarray] = []
        self._buffered = 0
        self._closed = False

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "ChunkedTraceWriter":
        return self

    def __exit__(self, exc_type, *exc: object) -> None:
        if exc_type is None:
            self.close()
        else:  # leave a recognizably truncated file, release the handle
            self._file.close()
            self._closed = True

    # -- writing --------------------------------------------------------

    def append(
        self,
        starts: Sequence[int] | np.ndarray,
        sizes: Sequence[int] | np.ndarray,
    ) -> None:
        """Append ranges; flushes every chunk that fills."""
        if self._closed:
            raise TraceError(f"{self.path}: writer is closed")
        starts_arr = np.ascontiguousarray(starts, dtype=_DTYPE)
        sizes_arr = np.ascontiguousarray(sizes, dtype=_DTYPE)
        if starts_arr.shape != sizes_arr.shape or starts_arr.ndim != 1:
            raise TraceError(
                "starts and sizes must be equal-length 1-d sequences"
            )
        if len(sizes_arr) and int(sizes_arr.min()) <= 0:
            bad = int(sizes_arr[sizes_arr <= 0][0])
            raise TraceError(f"range size must be positive, got {bad}")
        pos = 0
        total = len(starts_arr)
        while pos < total:
            take = min(self.chunk_ranges - self._buffered, total - pos)
            self._buf_starts.append(starts_arr[pos : pos + take])
            self._buf_sizes.append(sizes_arr[pos : pos + take])
            self._buffered += take
            pos += take
            if self._buffered == self.chunk_ranges:
                self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._buffered:
            return
        starts = np.concatenate(self._buf_starts)
        sizes = np.concatenate(self._buf_sizes)
        self._buf_starts.clear()
        self._buf_sizes.clear()
        self._buffered = 0
        raw_starts = starts.tobytes()
        raw_sizes = sizes.tobytes()
        if self.codec == "zlib":
            enc_starts = zlib.compress(raw_starts, 1)
            enc_sizes = zlib.compress(raw_sizes, 1)
        else:
            enc_starts, enc_sizes = raw_starts, raw_sizes
        self._chunks.append(
            {
                "offset": self._offset,
                "n": len(starts),
                "nbytes": [len(enc_starts), len(enc_sizes)],
                "digest": _chunk_digest(raw_starts, raw_sizes),
            }
        )
        self._file.write(enc_starts)
        self._file.write(enc_sizes)
        self._offset += len(enc_starts) + len(enc_sizes)

    def close(self) -> Path:
        """Flush the partial chunk, write the footer, seal the file."""
        if self._closed:
            return self.path
        self._flush_chunk()
        footer = {
            "version": FORMAT_VERSION,
            "kind": "ranges",
            "codec": self.codec,
            "columns": list(_COLUMNS),
            "dtype": _DTYPE.str,
            "chunk_ranges": self.chunk_ranges,
            "n_ranges": sum(c["n"] for c in self._chunks),
            "digest": _combine_digests(self._chunks),
            "chunks": self._chunks,
        }
        blob = json.dumps(footer, separators=(",", ":")).encode()
        self._file.write(blob)
        self._file.write(_TAIL.pack(len(blob), MAGIC))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True
        return self.path


def write_chunked(
    path: str | Path,
    starts: Sequence[int] | np.ndarray,
    sizes: Sequence[int] | np.ndarray,
    *,
    chunk_ranges: int = DEFAULT_CHUNK_RANGES,
    codec: str = "zlib",
) -> "ChunkedTrace":
    """Write one in-memory trace to a chunked file and open it back."""
    with ChunkedTraceWriter(
        path, chunk_ranges=chunk_ranges, codec=codec
    ) as writer:
        writer.append(starts, sizes)
    return ChunkedTrace(path)


class ChunkedTrace:
    """Reader over a chunked trace file (mmap on attach).

    Cheap to construct (one mmap + one footer parse), picklable by path,
    safe to share across processes: workers receiving a
    :class:`ChunkedTrace` re-open the file on attach, so a job ships a
    path and the footer geometry instead of the arrays.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise TraceError(
                f"{self.path}: cannot open chunked trace: {exc}"
            ) from exc
        try:
            self._map: mmap.mmap | None = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError:  # zero-length file cannot be mapped
            self._map = None
        self._footer = self._load_footer()
        self.codec: str = self._footer["codec"]
        self.n_ranges: int = int(self._footer["n_ranges"])
        self.chunk_ranges: int = int(self._footer["chunk_ranges"])
        self._chunks: list[dict] = self._footer["chunks"]
        #: Exclusive cumulative range counts, chunk i covers
        #: [bounds[i], bounds[i+1]).
        self._bounds = np.concatenate(
            ([0], np.cumsum([c["n"] for c in self._chunks]))
        ).astype(np.int64)
        self.digest: str = self._footer["digest"]
        if self.digest != _combine_digests(self._chunks):
            raise TraceError(
                f"{self.path}: footer digest does not match chunk index "
                "(corrupt footer)"
            )

    # -- footer ---------------------------------------------------------

    def _load_footer(self) -> dict:
        data = self._map
        if data is None or len(data) < len(MAGIC) + _TAIL.size:
            raise TraceError(
                f"{self.path}: truncated chunked trace (no footer)"
            )
        if data[: len(MAGIC)] != MAGIC:
            raise TraceError(
                f"{self.path}: not a chunked trace file (bad magic)"
            )
        footer_len, tail_magic = _TAIL.unpack(data[-_TAIL.size :])
        if tail_magic != MAGIC:
            raise TraceError(
                f"{self.path}: truncated chunked trace (missing trailer)"
            )
        end = len(data) - _TAIL.size
        start = end - footer_len
        if start < len(MAGIC):
            raise TraceError(
                f"{self.path}: corrupt chunked trace (footer length "
                f"{footer_len} exceeds file)"
            )
        try:
            footer = json.loads(bytes(data[start:end]))
        except ValueError as exc:
            raise TraceError(
                f"{self.path}: corrupt chunked trace footer: {exc}"
            ) from exc
        if not isinstance(footer, dict) or footer.get("kind") != "ranges":
            raise TraceError(
                f"{self.path}: not a range-trace chunk store"
            )
        if footer.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"{self.path}: unsupported chunk-store version "
                f"{footer.get('version')} (expected {FORMAT_VERSION})"
            )
        if footer.get("codec") not in CODECS:
            raise TraceError(
                f"{self.path}: unknown chunk codec {footer.get('codec')!r}"
            )
        try:
            for chunk in footer["chunks"]:
                offset = int(chunk["offset"])
                nbytes = sum(int(b) for b in chunk["nbytes"])
                if offset < len(MAGIC) or offset + nbytes > start:
                    raise TraceError(
                        f"{self.path}: chunk at offset {offset} extends "
                        "past the footer (truncated or corrupt index)"
                    )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"{self.path}: malformed chunk index: {exc}"
            ) from exc
        return footer

    # -- identity -------------------------------------------------------

    @property
    def trace_id(self) -> str:
        """Checkpoint/store identity (``chunked=<24 hex>``)."""
        return f"chunked={self.digest[:24]}"

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def __len__(self) -> int:
        return self.n_ranges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedTrace({str(self.path)!r}, ranges={self.n_ranges}, "
            f"chunks={self.n_chunks}, codec={self.codec!r})"
        )

    # -- pickling: re-open by path on attach ----------------------------

    def __getstate__(self) -> dict:
        return {"path": str(self.path), "digest": self.digest}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["path"])
        if self.digest != state["digest"]:
            raise TraceError(
                f"{self.path}: content changed between shipping and "
                f"attach (digest {self.digest[:12]}... != "
                f"{state['digest'][:12]}...)"
            )

    # -- reading --------------------------------------------------------

    def _column_bytes(self, index: int) -> tuple[bytes, bytes]:
        chunk = self._chunks[index]
        offset = int(chunk["offset"])
        n_starts, n_sizes = (int(b) for b in chunk["nbytes"])
        assert self._map is not None  # empty files have no chunks
        view = memoryview(self._map)
        enc_starts = view[offset : offset + n_starts]
        enc_sizes = view[offset + n_starts : offset + n_starts + n_sizes]
        if self.codec == "zlib":
            try:
                return zlib.decompress(enc_starts), zlib.decompress(enc_sizes)
            except zlib.error as exc:
                raise TraceError(
                    f"{self.path}: chunk {index} is corrupt "
                    f"(inflate failed: {exc})"
                ) from exc
        return bytes(enc_starts), bytes(enc_sizes)

    def chunk(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Decode one chunk into ``(starts, sizes)`` int64 arrays.

        The chunk digest is verified on every read, so a flipped byte
        anywhere in the payload raises :class:`~repro.errors.TraceError`
        instead of feeding garbage to a simulator.
        """
        if not 0 <= index < len(self._chunks):
            raise TraceError(
                f"{self.path}: chunk index {index} out of range "
                f"0..{len(self._chunks) - 1}"
            )
        raw_starts, raw_sizes = self._column_bytes(index)
        chunk = self._chunks[index]
        n = int(chunk["n"])
        if len(raw_starts) != n * _DTYPE.itemsize or len(
            raw_sizes
        ) != n * _DTYPE.itemsize:
            raise TraceError(
                f"{self.path}: chunk {index} payload length mismatch "
                "(truncated or corrupt)"
            )
        if _chunk_digest(raw_starts, raw_sizes) != chunk["digest"]:
            raise TraceError(
                f"{self.path}: chunk {index} digest mismatch "
                "(corrupt payload)"
            )
        starts = np.frombuffer(raw_starts, dtype=_DTYPE)
        sizes = np.frombuffer(raw_sizes, dtype=_DTYPE)
        return starts, sizes

    def iter_chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield every chunk's ``(starts, sizes)`` in trace order."""
        for index in range(len(self._chunks)):
            yield self.chunk(index)

    def window(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Ranges ``[lo, hi)`` of the trace, reading only covering chunks.

        This is the interval-sampling access path: a sampled run touches
        the handful of chunks its windows overlap, not the whole file.
        """
        if not 0 <= lo <= hi <= self.n_ranges:
            raise TraceError(
                f"{self.path}: window [{lo}, {hi}) outside trace of "
                f"{self.n_ranges} ranges"
            )
        if lo == hi:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        first = int(np.searchsorted(self._bounds, lo, side="right")) - 1
        last = int(np.searchsorted(self._bounds, hi, side="left"))
        starts_parts, sizes_parts = [], []
        for index in range(first, last):
            starts, sizes = self.chunk(index)
            base = int(self._bounds[index])
            a = max(0, lo - base)
            b = min(len(starts), hi - base)
            starts_parts.append(starts[a:b])
            sizes_parts.append(sizes[a:b])
        if len(starts_parts) == 1:
            return starts_parts[0], sizes_parts[0]
        return np.concatenate(starts_parts), np.concatenate(sizes_parts)

    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """Decode the whole trace into memory (tests and small traces)."""
        if not self._chunks:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return self.window(0, self.n_ranges)

    def verify(self) -> None:
        """Full streaming integrity check (every chunk digest)."""
        for index in range(len(self._chunks)):
            self.chunk(index)

    def close(self) -> None:
        """Release the mapping and file handle (reads fail afterwards)."""
        if self._map is not None:
            self._map.close()
            self._map = None
        self._file.close()

    def __enter__(self) -> "ChunkedTrace":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
