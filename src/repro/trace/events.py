"""Event traces: the dynamic program behaviour record (Figure 3).

An event trace records "the dynamic program behavior as a high level
sequence of tokens": basic blocks entered and the data addresses of the
load/store operations each visit performs.  Crucially (Section 3.3), the
event trace depends on the scheduled code but *not* on the instruction
format or binary layout — the same event trace is replayed through
different processors' binaries by the trace generator.

Storage is CSR-style: one int32 per block visit plus flat arrays of data
addresses (and their stream ids, kept for trace decoration) indexed by a
per-visit offset array.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


class EventKind(enum.Enum):
    """Token kinds of the event trace."""

    BLOCK_ENTER = "block"
    DATA_ADDRESS = "data"


@dataclass(frozen=True)
class EventTrace:
    """An immutable event trace.

    Attributes
    ----------
    blocks:
        Block table: global index -> (procedure name, block id).
    visit_blocks:
        int32 array of global block indexes, one per visit, in order.
    data_addrs / data_streams / data_writes:
        Flat int64 / int32 / bool arrays of the data byte addresses, the
        stream each came from, and whether the access is a store, across
        all visits.
    data_offsets:
        int64 array of length ``n_visits + 1``; visit ``i``'s data
        references are ``data_addrs[data_offsets[i]:data_offsets[i+1]]``.
    """

    blocks: tuple[tuple[str, int], ...]
    visit_blocks: np.ndarray
    data_addrs: np.ndarray
    data_streams: np.ndarray
    data_offsets: np.ndarray
    data_writes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.data_offsets) != len(self.visit_blocks) + 1:
            raise TraceError("data_offsets must have n_visits + 1 entries")
        if not (
            len(self.data_addrs)
            == len(self.data_streams)
            == len(self.data_writes)
        ):
            raise TraceError(
                "data_addrs, data_streams and data_writes length mismatch"
            )
        if len(self.data_offsets) and int(self.data_offsets[-1]) != len(
            self.data_addrs
        ):
            raise TraceError("data_offsets does not cover data_addrs")

    @property
    def n_visits(self) -> int:
        return len(self.visit_blocks)

    @property
    def n_data_refs(self) -> int:
        return len(self.data_addrs)

    def visit_frequencies(self) -> np.ndarray:
        """Execution count of every block-table entry (dynamic weights)."""
        return np.bincount(self.visit_blocks, minlength=len(self.blocks))

    def block_key(self, global_index: int) -> tuple[str, int]:
        """(procedure name, block id) of a block-table entry."""
        return self.blocks[global_index]

    def iter_visits(self):
        """Yield (proc_name, block_id, data_addrs_view) per visit.

        A convenience for tests and small analyses; the trace generator
        uses the raw arrays directly.
        """
        offsets = self.data_offsets
        for i, gidx in enumerate(self.visit_blocks.tolist()):
            proc_name, block_id = self.blocks[gidx]
            yield proc_name, block_id, self.data_addrs[
                offsets[i] : offsets[i + 1]
            ]


class EventTraceBuilder:
    """Incremental builder used by the emulator."""

    def __init__(self) -> None:
        self._block_index: dict[tuple[str, int], int] = {}
        self._blocks: list[tuple[str, int]] = []
        self._visits: list[int] = []
        self._addrs: list[int] = []
        self._streams: list[int] = []
        self._writes: list[bool] = []
        self._offsets: list[int] = [0]

    def global_index(self, proc_name: str, block_id: int) -> int:
        """Block-table index for a block, interning it on first use."""
        key = (proc_name, block_id)
        index = self._block_index.get(key)
        if index is None:
            index = len(self._blocks)
            self._block_index[key] = index
            self._blocks.append(key)
        return index

    def begin_visit(self, proc_name: str, block_id: int) -> None:
        """Open a block-visit record."""
        self._visits.append(self.global_index(proc_name, block_id))

    def add_data_ref(
        self, addr: int, stream: int, is_write: bool = False
    ) -> None:
        """Append one data reference to the open visit."""
        self._addrs.append(addr)
        self._streams.append(stream)
        self._writes.append(is_write)

    def end_visit(self) -> None:
        """Close the open visit's data-reference window."""
        self._offsets.append(len(self._addrs))

    @property
    def n_visits(self) -> int:
        return len(self._visits)

    def build(self) -> EventTrace:
        """Freeze the accumulated events into an immutable trace."""
        if len(self._offsets) != len(self._visits) + 1:
            raise TraceError(
                "unbalanced begin_visit/end_visit calls in builder"
            )
        return EventTrace(
            blocks=tuple(self._blocks),
            visit_blocks=np.asarray(self._visits, dtype=np.int32),
            data_addrs=np.asarray(self._addrs, dtype=np.int64),
            data_streams=np.asarray(self._streams, dtype=np.int32),
            data_offsets=np.asarray(self._offsets, dtype=np.int64),
            data_writes=np.asarray(self._writes, dtype=bool),
        )
