"""Emulator + execution engine: run a program, produce an event trace.

This module plays the role of the paper's IMPACT-based emulation path
(Figure 3): the program's control flow is executed with seeded branch
outcomes, emitting block-enter events and load/store data addresses.

Two properties the dilation model depends on are guaranteed by
construction:

* the *block visit sequence* and the *base data addresses* depend only on
  (program, seed, budget) — never on the processor — matching the paper's
  step-1 assumption;
* processor-dependent perturbations (spill traffic, speculative loads)
  are layered on afterwards from the compiled program's per-block
  annotations, using only dedicated spill-stream state and re-reads of
  recent addresses, so the base reference stream is untouched.  These
  perturbations are exactly the step-1 error sources Table 2 measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import TraceError
from repro.isa.program import Program
from repro.isa.validate import validate_program
from repro.trace.datamodel import DataAddressModel, StreamSpec
from repro.trace.events import EventTrace, EventTraceBuilder
from repro.vliwcomp.compile import CompiledProgram
from repro.vliwcomp.regalloc import SPILL_STREAM

#: Visit states of an execution frame.
_VISIT, _CALLS, _BRANCH = 0, 1, 2


@dataclass
class _Frame:
    proc_name: str
    block_id: int
    state: int = _VISIT
    call_index: int = 0
    #: Successor chosen at visit time (consumed in the _BRANCH state);
    #: None for return blocks.  Drawing the choice early lets trace
    #: decoration resolve speculative loads against the actual branch
    #: outcome without changing the visit sequence.
    chosen_successor: int | None = None


class Emulator:
    """Seeded control-flow execution of a validated program."""

    def __init__(
        self,
        program: Program,
        streams: dict[int, StreamSpec],
        seed: int = 1,
    ):
        validate_program(program)
        self.program = program
        self.streams = streams
        self.seed = seed

    def run(
        self,
        max_visits: int,
        compiled: CompiledProgram | None = None,
    ) -> EventTrace:
        """Execute until the entry procedure returns or the visit budget.

        ``compiled`` enables trace decoration: spill and speculative data
        references recorded in the compiled blocks are appended to each
        visit's base references.
        """
        if max_visits < 1:
            raise TraceError(f"max_visits must be >= 1, got {max_visits}")
        rng = random.Random(self.seed)
        data = DataAddressModel(self.streams, seed=self.seed)
        builder = EventTraceBuilder()
        program = self.program

        stack = [_Frame(program.entry, program.entry_procedure.entry.block_id)]
        while stack and builder.n_visits < max_visits:
            frame = stack[-1]
            proc = program.procedure(frame.proc_name)
            block = proc.block(frame.block_id)
            if frame.state == _VISIT:
                edges = proc.successors(frame.block_id)
                frame.chosen_successor = (
                    _choose(edges, rng) if edges else None
                )
                builder.begin_visit(frame.proc_name, frame.block_id)
                for op in block.operations:
                    if op.is_memory:
                        builder.add_data_ref(
                            data.next_address(op.stream),
                            op.stream,
                            is_write=op.is_store,
                        )
                if compiled is not None:
                    self._decorate(builder, data, compiled, frame)
                builder.end_visit()
                frame.state = _CALLS
                frame.call_index = 0
            elif frame.state == _CALLS:
                if frame.call_index < len(block.calls):
                    callee = block.calls[frame.call_index]
                    frame.call_index += 1
                    entry_block = program.procedure(callee).entry.block_id
                    stack.append(_Frame(callee, entry_block))
                else:
                    frame.state = _BRANCH
            else:  # _BRANCH
                if frame.chosen_successor is None:
                    stack.pop()
                    continue
                frame.block_id = frame.chosen_successor
                frame.state = _VISIT
        return builder.build()

    def _decorate(
        self,
        builder: EventTraceBuilder,
        data: DataAddressModel,
        compiled: CompiledProgram,
        frame: _Frame,
    ) -> None:
        """Append spill and speculative references for this visit."""
        cblock = compiled.blocks.get((frame.proc_name, frame.block_id))
        if cblock is None:
            raise TraceError(
                f"compiled program lacks block "
                f"({frame.proc_name!r}, {frame.block_id})"
            )
        for index in range(cblock.spill_ops):
            # Spill ops alternate store/load pairs (see _spill_ops).
            builder.add_data_ref(
                data.next_address(SPILL_STREAM),
                SPILL_STREAM,
                is_write=index % 2 == 0,
            )
        wrong_path = (
            cblock.predicted_successor is not None
            and frame.chosen_successor != cblock.predicted_successor
        )
        for index, stream in enumerate(cblock.speculative_streams):
            # Speculative hoisted operations are always loads.  On the
            # predicted path they pre-touch the address the successor
            # will read (a prefetch).  Mispredicted, about half still
            # read data the committed path shares (loop-carried values);
            # the rest touch wrong-path data — Section 4.1's "spurious
            # load addresses", which "is not expected to be large".
            if wrong_path and index % 2 == 0:
                builder.add_data_ref(
                    data.wrong_path_address(stream), stream
                )
            else:
                builder.add_data_ref(
                    data.peek_next_address(stream), stream
                )


def _choose(edges, rng: random.Random) -> int:
    """Pick a successor block id according to edge probabilities."""
    point = rng.random()
    acc = 0.0
    for edge in edges:
        acc += edge.probability
        if point < acc:
            return edge.dst
    return edges[-1].dst


def emulate(
    program: Program,
    streams: dict[int, StreamSpec],
    seed: int = 1,
    max_visits: int = 100_000,
    compiled: CompiledProgram | None = None,
) -> EventTrace:
    """One-shot convenience wrapper around :class:`Emulator`."""
    return Emulator(program, streams, seed).run(max_visits, compiled)
