"""Emulation, event traces and address-trace generation (Section 3.3).

The pipeline mirrors the paper's memory simulation system (Figure 3):

* :mod:`repro.trace.emulator` plays the emulator + execution engine: it
  executes a program's control flow and emits an *event trace* (blocks
  entered, branch directions, load/store data addresses).  The event trace
  depends on the scheduled code but not on the instruction format or
  binary layout.
* :mod:`repro.trace.generator` plays the trace generator: it maps the
  event trace through a processor's linked binary to instruction, data or
  joint (unified) *address traces*.
* :mod:`repro.trace.ranges` defines the compact range-trace representation
  consumed by the cache simulators and the AHH modeler.
* :mod:`repro.trace.sampling` implements trace sampling: the paper's
  initial-segment truncation (Section 5.2) plus interval sampling with
  warm-up and extrapolation (arXiv 2402.00649).
* :mod:`repro.trace.chunkstore` is the chunked, compressed, mmap-able
  on-disk trace format for traces larger than memory.
"""

from repro.trace.chunkstore import (
    ChunkedTrace,
    ChunkedTraceWriter,
    write_chunked,
)
from repro.trace.datamodel import DataAddressModel, StreamSpec
from repro.trace.emulator import Emulator, emulate
from repro.trace.events import EventKind, EventTrace
from repro.trace.generator import TraceGenerator
from repro.trace.io import (
    load_events,
    load_range_trace,
    save_events,
    save_range_trace,
)
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace
from repro.trace.sampling import (
    SampledEstimate,
    SamplePlan,
    SampleWindow,
    extrapolate,
    plan_windows,
    sample_events,
    sample_events_plan,
)

__all__ = [
    "EventKind",
    "EventTrace",
    "Emulator",
    "emulate",
    "DataAddressModel",
    "StreamSpec",
    "TraceGenerator",
    "RangeTrace",
    "KIND_INSTR",
    "KIND_DATA",
    "sample_events",
    "sample_events_plan",
    "SamplePlan",
    "SampleWindow",
    "SampledEstimate",
    "plan_windows",
    "extrapolate",
    "save_events",
    "load_events",
    "save_range_trace",
    "load_range_trace",
    "ChunkedTrace",
    "ChunkedTraceWriter",
    "write_chunked",
]
