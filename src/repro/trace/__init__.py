"""Emulation, event traces and address-trace generation (Section 3.3).

The pipeline mirrors the paper's memory simulation system (Figure 3):

* :mod:`repro.trace.emulator` plays the emulator + execution engine: it
  executes a program's control flow and emits an *event trace* (blocks
  entered, branch directions, load/store data addresses).  The event trace
  depends on the scheduled code but not on the instruction format or
  binary layout.
* :mod:`repro.trace.generator` plays the trace generator: it maps the
  event trace through a processor's linked binary to instruction, data or
  joint (unified) *address traces*.
* :mod:`repro.trace.ranges` defines the compact range-trace representation
  consumed by the cache simulators and the AHH modeler.
* :mod:`repro.trace.sampling` implements initial-segment trace sampling
  (Section 5.2's "sampling an initial segment of the trace").
"""

from repro.trace.datamodel import DataAddressModel, StreamSpec
from repro.trace.emulator import Emulator, emulate
from repro.trace.events import EventKind, EventTrace
from repro.trace.generator import TraceGenerator
from repro.trace.io import (
    load_events,
    load_range_trace,
    save_events,
    save_range_trace,
)
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace
from repro.trace.sampling import sample_events

__all__ = [
    "EventKind",
    "EventTrace",
    "Emulator",
    "emulate",
    "DataAddressModel",
    "StreamSpec",
    "TraceGenerator",
    "RangeTrace",
    "KIND_INSTR",
    "KIND_DATA",
    "sample_events",
    "save_events",
    "load_events",
    "save_range_trace",
    "load_range_trace",
]
