"""Unit tests for repro.workloads.profiles."""

import pytest
from dataclasses import replace

from repro.errors import ConfigurationError
from repro.workloads.profiles import StreamProfile, WorkloadProfile


def valid_profile(**overrides):
    base = WorkloadProfile(
        name="t",
        seed=1,
        n_procedures=4,
        blocks_per_proc=(3, 6),
        mean_ops_per_block=6.0,
        op_mix=(0.5, 0.2, 0.3),
        dependence_density=0.5,
        loop_probability=0.2,
        loop_continue=0.8,
        branch_probability=0.3,
        call_density=0.1,
        streams=(StreamProfile("sequential", region_kb=8),),
    )
    return replace(base, **overrides) if overrides else base


class TestValidation:
    def test_valid(self):
        valid_profile()

    def test_no_procedures(self):
        with pytest.raises(ConfigurationError, match="procedure"):
            valid_profile(n_procedures=0)

    def test_bad_block_range(self):
        with pytest.raises(ConfigurationError, match="blocks_per_proc"):
            valid_profile(blocks_per_proc=(5, 3))
        with pytest.raises(ConfigurationError, match="blocks_per_proc"):
            valid_profile(blocks_per_proc=(1, 3))

    def test_bad_mix(self):
        with pytest.raises(ConfigurationError, match="mix"):
            valid_profile(op_mix=(0.0, 0.0, 0.0))
        with pytest.raises(ConfigurationError, match="mix"):
            valid_profile(op_mix=(-0.1, 0.5, 0.6))

    @pytest.mark.parametrize(
        "field",
        [
            "dependence_density",
            "loop_probability",
            "loop_continue",
            "branch_probability",
            "call_density",
            "load_fraction",
        ],
    )
    def test_probability_fields(self, field):
        with pytest.raises(ConfigurationError, match=field):
            valid_profile(**{field: 1.2})

    def test_streams_required(self):
        with pytest.raises(ConfigurationError, match="stream"):
            valid_profile(streams=())

    def test_tiny_ops_per_block(self):
        with pytest.raises(ConfigurationError, match="mean_ops"):
            valid_profile(mean_ops_per_block=0.5)
