"""Unit tests for repro.workloads.suite."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.validate import validate_program
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    benchmark_profile,
    load_benchmark,
    tiny_workload,
)


class TestSuite:
    def test_ten_benchmarks_in_paper_order(self):
        assert len(BENCHMARK_NAMES) == 10
        assert BENCHMARK_NAMES[0] == "085.gcc"
        assert BENCHMARK_NAMES[-1] == "unepic"

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_all_benchmarks_generate_and_validate(self, name):
        workload = load_benchmark(name, scale=0.15)
        validate_program(workload.program)
        assert workload.name == name
        assert workload.streams

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            load_benchmark("176.gcc")

    def test_scale_shrinks_code(self):
        small = load_benchmark("epic", scale=0.2)
        large = load_benchmark("epic", scale=0.6)
        assert small.program.num_operations < large.program.num_operations

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError, match="scale"):
            load_benchmark("epic", scale=0)

    def test_profiles_are_distinct(self):
        profiles = [benchmark_profile(n) for n in BENCHMARK_NAMES]
        seeds = {p.seed for p in profiles}
        assert len(seeds) == len(profiles)

    def test_character_knobs(self):
        gcc = benchmark_profile("085.gcc")
        mipmap = benchmark_profile("mipmap")
        # gcc is branchier; mipmap is float-heavier.
        assert gcc.branch_probability > mipmap.branch_probability
        assert mipmap.op_mix[1] > gcc.op_mix[1]


class TestTinyWorkload:
    def test_generates_and_validates(self):
        workload = tiny_workload()
        validate_program(workload.program)
        assert workload.program.num_blocks < 50

    def test_seed_controls_generation(self):
        a = tiny_workload(seed=1)
        b = tiny_workload(seed=2)
        assert a.program.num_operations != b.program.num_operations
