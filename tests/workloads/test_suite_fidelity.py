"""Suite-fidelity tests: the paper's benchmark-selection criteria.

Section 6: "we choose benchmarks where instruction and unified cache
behavior have a significant effect on overall performance ... benchmarks
with the highest instruction cache miss rates."  These tests verify the
synthetic suite actually has that character (at reduced scale, so they
stay fast).
"""

import pytest

from repro.cache.config import CacheConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.workloads.suite import load_benchmark

SMALL_ICACHE = CacheConfig.from_size(1024, 1, 32)

# A representative cross-section: biggest (gcc), media (epic), crypto
# (pgpencode).  The full suite is exercised at paper scale by the bench
# harness.
PROBE = ("085.gcc", "epic", "pgpencode")


@pytest.fixture(scope="module", params=PROBE)
def pipeline(request):
    # Full-scale code footprints (the selection criterion is about the
    # real working sets); a short execution sample keeps it fast.
    workload = load_benchmark(request.param, scale=1.0)
    return ExperimentPipeline(
        workload, max_visits=10_000, i_granule=500, u_granule=2_000
    )


class TestSelectionCriteria:
    def test_significant_small_icache_miss_rate(self, pipeline):
        """The 1KB instruction cache must genuinely hurt (>= 5% of line
        accesses missing), as the paper's selection demands."""
        art = pipeline.reference_artifacts()
        misses = pipeline.actual_misses(
            art.processor, "icache", [SMALL_ICACHE]
        )[SMALL_ICACHE]
        accesses = art.instruction_trace.line_accesses(
            SMALL_ICACHE.line_size
        )
        assert misses / accesses > 0.05

    def test_code_footprint_exceeds_small_cache(self, pipeline):
        art = pipeline.reference_artifacts()
        assert art.binary.text_size > 4 * SMALL_ICACHE.size_bytes

    def test_dynamic_execution_tours_most_of_the_code(self, pipeline):
        """The phase-loop structure revisits the whole footprint, keeping
        the instruction working set large."""
        art = pipeline.reference_artifacts()
        frequencies = art.events.visit_frequencies()
        touched = int((frequencies > 0).sum())
        assert touched / len(frequencies) > 0.6

    def test_memory_operations_present_in_hot_code(self, pipeline):
        art = pipeline.reference_artifacts()
        assert art.events.n_data_refs > art.events.n_visits  # >1 ref/visit
