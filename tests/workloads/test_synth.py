"""Unit tests for repro.workloads.synth."""

from dataclasses import replace

from repro.isa.validate import validate_program
from repro.workloads.profiles import StreamProfile, WorkloadProfile
from repro.workloads.synth import generate_workload


def profile(seed=7, **overrides):
    base = WorkloadProfile(
        name="synthtest",
        seed=seed,
        n_procedures=6,
        blocks_per_proc=(4, 9),
        mean_ops_per_block=8.0,
        op_mix=(0.5, 0.15, 0.35),
        dependence_density=0.5,
        loop_probability=0.25,
        loop_continue=0.85,
        branch_probability=0.3,
        call_density=0.15,
        streams=(
            StreamProfile("sequential", region_kb=16, count=2),
            StreamProfile("random", region_kb=8),
        ),
    )
    return replace(base, **overrides) if overrides else base


class TestGeneration:
    def test_program_validates(self):
        generated = generate_workload(profile())
        validate_program(generated.program)  # must not raise

    def test_deterministic_per_seed(self):
        a = generate_workload(profile(seed=3))
        b = generate_workload(profile(seed=3))
        assert a.program.num_operations == b.program.num_operations
        for name, proc in a.program.procedures.items():
            other = b.program.procedures[name]
            assert [blk.block_id for blk in proc.blocks] == [
                blk.block_id for blk in other.blocks
            ]
            assert [
                (e.src, e.dst, e.probability) for e in proc.edges
            ] == [(e.src, e.dst, e.probability) for e in other.edges]

    def test_different_seeds_differ(self):
        a = generate_workload(profile(seed=3))
        b = generate_workload(profile(seed=4))
        assert a.program.num_operations != b.program.num_operations

    def test_stream_table_matches_profile(self):
        generated = generate_workload(profile())
        assert len(generated.streams) == 3
        patterns = sorted(s.pattern for s in generated.streams.values())
        assert patterns == ["random", "sequential", "sequential"]

    def test_main_is_phase_loop(self):
        generated = generate_workload(profile())
        main = generated.program.procedure("main")
        # One phase block per worker + latch + return.
        assert len(main.blocks) == 6 + 2
        called = [c for blk in main.blocks for c in blk.calls]
        assert called == [f"f{i:03d}" for i in range(6)]

    def test_workers_only_call_later_workers(self):
        generated = generate_workload(profile(call_density=0.5))
        for name, proc in generated.program.procedures.items():
            if name == "main":
                continue
            index = int(name[1:])
            for blk in proc.blocks:
                for callee in blk.calls:
                    assert int(callee[1:]) > index

    def test_memory_ops_reference_known_streams(self):
        generated = generate_workload(profile())
        stream_ids = set(generated.streams)
        for _, blk in generated.program.all_blocks():
            for op in blk.operations:
                if op.is_memory:
                    assert op.stream in stream_ids

    def test_every_block_ends_with_branch(self):
        generated = generate_workload(profile())
        for _, blk in generated.program.all_blocks():
            assert blk.operations[-1].is_branch
