"""Unit tests for repro.ahh.stable (numerically stable collisions)."""

import pytest

from repro.ahh.stable import (
    collisions_auto,
    collisions_direct,
    collisions_stable,
)
from repro.errors import ModelError


class TestAgreement:
    @pytest.mark.parametrize("u", [0.0, 1.0, 7.5, 32.0, 200.0, 1000.0])
    @pytest.mark.parametrize("sets", [1, 8, 64, 1024])
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_direct_and_stable_agree(self, u, sets, assoc):
        direct = collisions_direct(u, sets, assoc)
        stable = collisions_stable(u, sets, assoc)
        assert stable == pytest.approx(direct, rel=1e-6, abs=1e-9)

    def test_stable_handles_tiny_collision_counts(self):
        # u << S*A: the direct difference is cancellation-dominated; the
        # tail series gives a clean positive value.
        value = collisions_stable(8.0, 4096, 4)
        assert 0.0 <= value < 1e-6
        # It must still be the sum of genuinely positive terms.
        assert value >= 0.0

    def test_stable_exact_case(self):
        # Everything beyond assoc collides: with u=2, S=1 and A=1, the
        # set holds both lines -> both "occupy" slot 2 > A, colliding.
        assert collisions_stable(2.0, 1, 1) == pytest.approx(2.0)


class TestAuto:
    def test_auto_matches_direct_in_normal_regime(self):
        assert collisions_auto(100.0, 8, 1) == pytest.approx(
            collisions_direct(100.0, 8, 1)
        )

    def test_auto_switches_in_cancellation_regime(self):
        # Large u, huge cache: collisions ~ 0; auto must return the stable
        # (non-negative, tiny) value rather than a clamped artifact.
        value = collisions_auto(50.0, 1 << 16, 8)
        assert value >= 0.0
        assert value == pytest.approx(
            collisions_stable(50.0, 1 << 16, 8), rel=1e-6, abs=1e-12
        )

    def test_explicit_methods(self):
        assert collisions_auto(10.0, 2, 1, method="direct") == pytest.approx(
            collisions_direct(10.0, 2, 1)
        )
        assert collisions_auto(10.0, 2, 1, method="stable") == pytest.approx(
            collisions_stable(10.0, 2, 1)
        )

    def test_unknown_method(self):
        with pytest.raises(ModelError, match="method"):
            collisions_auto(1.0, 2, 1, method="bogus")


class TestValidation:
    def test_negative_u(self):
        with pytest.raises(ModelError):
            collisions_direct(-1.0, 2, 1)

    def test_bad_sets(self):
        with pytest.raises(ModelError):
            collisions_stable(1.0, 0, 1)

    def test_negative_assoc(self):
        with pytest.raises(ModelError):
            collisions_direct(1.0, 2, -1)
