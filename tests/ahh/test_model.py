"""Unit tests for repro.ahh.model."""

import pytest

from repro.ahh.model import (
    collisions,
    occupancy_pmf,
    scale_misses,
    transition_probability,
    unique_lines,
)
from repro.errors import ModelError


class TestTransitionProbability:
    def test_eq_44(self):
        # p2 = (lav - (1 + p1)) / (lav - 1)
        assert transition_probability(5.0, 0.5) == pytest.approx(3.5 / 4.0)

    def test_no_runs_convention(self):
        assert transition_probability(1.0, 1.0) == 0.0

    def test_invalid_lav(self):
        with pytest.raises(ModelError, match=">= 1"):
            transition_probability(0.5, 0.1)


class TestUniqueLines:
    def test_identity_at_one_word(self):
        assert unique_lines(100.0, 0.3, 4.0, 1.0) == pytest.approx(100.0)

    def test_monotone_decreasing_in_line_size(self):
        values = [
            unique_lines(100.0, 0.3, 4.0, line) for line in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values, reverse=True)

    def test_large_line_limit_is_cluster_count(self):
        u1, p1, lav = 100.0, 0.3, 4.0
        clusters = u1 * (p1 + (1 - p1) / lav)
        assert unique_lines(u1, p1, lav, 1e9) == pytest.approx(
            clusters, rel=1e-6
        )

    def test_all_isolated_trace_is_line_size_insensitive(self):
        # p1 = 1: every unique address is its own cluster.
        assert unique_lines(50.0, 1.0, 4.0, 16.0) == pytest.approx(50.0)

    def test_fractional_line_sizes_supported(self):
        a = unique_lines(100.0, 0.2, 5.0, 3.0)
        lower = unique_lines(100.0, 0.2, 5.0, 2.0)
        upper = unique_lines(100.0, 0.2, 5.0, 4.0)
        assert upper < a < lower

    def test_paper_literal_variant_exists(self):
        value = unique_lines(100.0, 0.3, 4.0, 4.0, variant="paper-literal")
        assert value > 0

    def test_unknown_variant(self):
        with pytest.raises(ModelError, match="variant"):
            unique_lines(1.0, 0.0, 1.0, 1.0, variant="bogus")

    def test_domain_checks(self):
        with pytest.raises(ModelError):
            unique_lines(-1.0, 0.5, 2.0, 1.0)
        with pytest.raises(ModelError):
            unique_lines(1.0, 1.5, 2.0, 1.0)
        with pytest.raises(ModelError):
            unique_lines(1.0, 0.5, 0.5, 1.0)
        with pytest.raises(ModelError):
            unique_lines(1.0, 0.5, 2.0, 0.5)


class TestOccupancyPmf:
    def test_sums_to_one_for_integer_u(self):
        pmf = occupancy_pmf(20.0, 8, max_a=40)
        assert sum(pmf) == pytest.approx(1.0, abs=1e-9)

    def test_mean_is_u_over_s(self):
        u, sets = 24.0, 8
        pmf = occupancy_pmf(u, sets, max_a=40)
        mean = sum(a * p for a, p in enumerate(pmf))
        assert mean == pytest.approx(u / sets, rel=1e-9)

    def test_matches_binomial_formula(self):
        from math import comb

        u, sets = 10, 4
        pmf = occupancy_pmf(float(u), sets, max_a=10)
        for a in range(11):
            expected = comb(u, a) * (1 / sets) ** a * (1 - 1 / sets) ** (u - a)
            assert pmf[a] == pytest.approx(expected, rel=1e-9)

    def test_single_set_point_mass(self):
        pmf = occupancy_pmf(5.0, 1, max_a=8)
        assert pmf[5] == 1.0
        assert sum(pmf) == 1.0

    def test_zero_u(self):
        pmf = occupancy_pmf(0.0, 8, max_a=4)
        assert pmf[0] == pytest.approx(1.0)
        assert sum(pmf[1:]) == pytest.approx(0.0)


class TestCollisions:
    def test_zero_when_cache_holds_everything(self):
        # u far below capacity -> essentially no collisions.
        assert collisions(1.0, 1024, 8) == pytest.approx(0.0, abs=1e-6)

    def test_everything_collides_in_tiny_cache(self):
        # u lines into 1 set of assoc 0: everything collides.
        assert collisions(10.0, 1, 0) == pytest.approx(10.0)

    def test_monotone_increasing_in_u(self):
        values = [collisions(u, 8, 1) for u in (4.0, 8.0, 16.0, 32.0)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_assoc(self):
        values = [collisions(32.0, 8, a) for a in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_bounded_by_u(self):
        assert collisions(32.0, 8, 1) <= 32.0


class TestScaleMisses:
    def test_eq_47(self):
        assert scale_misses(100.0, 10.0, 25.0) == pytest.approx(250.0)

    def test_zero_reference_and_zero_target(self):
        assert scale_misses(7.0, 0.0, 0.0) == 7.0

    def test_zero_reference_nonzero_target_raises(self):
        with pytest.raises(ModelError, match="zero"):
            scale_misses(7.0, 0.0, 5.0)

    def test_negative_collisions_rejected(self):
        with pytest.raises(ModelError):
            scale_misses(1.0, -1.0, 1.0)
