"""Property-based tests for the AHH model (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.ahh.model import collisions, occupancy_pmf, unique_lines
from repro.ahh.stable import collisions_direct, collisions_stable

u1s = st.floats(min_value=0.1, max_value=5000.0)
p1s = st.floats(min_value=0.0, max_value=1.0)
lavs = st.floats(min_value=1.0, max_value=64.0)
lines = st.sampled_from([1.0, 1.5, 2.0, 3.7, 4.0, 8.0, 13.0, 16.0])
sets = st.sampled_from([1, 2, 8, 64, 512])
assocs = st.integers(min_value=1, max_value=8)


@given(u1=u1s, p1=p1s, lav=lavs, line=lines)
@settings(max_examples=200, deadline=None)
def test_unique_lines_bounds(u1, p1, lav, line):
    """1 <= words per line implies clusters <= u(L) <= u(1)."""
    value = unique_lines(u1, p1, lav, line)
    clusters = u1 * (p1 + (1 - p1) / lav)
    assert clusters - 1e-9 <= value <= u1 + 1e-9


@given(u1=u1s, p1=p1s, lav=lavs)
@settings(max_examples=100, deadline=None)
def test_unique_lines_monotone_in_line_size(u1, p1, lav):
    values = [unique_lines(u1, p1, lav, line) for line in (1, 2, 4, 8, 16)]
    for a, b in zip(values, values[1:]):
        assert a >= b - 1e-9


@given(u=st.integers(min_value=0, max_value=2000), s=sets)
@settings(max_examples=100, deadline=None)
def test_occupancy_pmf_is_distribution_for_integer_u(u, s):
    pmf = occupancy_pmf(float(u), s, max_a=u + 2)
    assert all(p >= -1e-12 for p in pmf)
    assert sum(pmf) == pytest.approx(1.0, abs=1e-6)


@given(u=st.floats(min_value=0.0, max_value=2000.0), s=sets)
@settings(max_examples=100, deadline=None)
def test_occupancy_pmf_near_distribution_for_fractional_u(u, s):
    # The truncated generalized binomial over-counts slightly for
    # fractional u (documented in occupancy_pmf); bounded near 1.
    pmf = occupancy_pmf(u, s, max_a=int(u) + 2)
    assert all(p >= -1e-12 for p in pmf)
    assert 1.0 - 1e-6 <= sum(pmf) <= 1.07


@given(u=st.integers(min_value=0, max_value=2000), s=sets, a=assocs)
@settings(max_examples=150, deadline=None)
def test_collision_methods_agree_for_integer_u(u, s, a):
    # For integer u the occupancy mean identity sum(a P(a)) = u/S is
    # exact, so the direct difference and the tail series coincide.
    direct = collisions_direct(float(u), s, a)
    stable = collisions_stable(float(u), s, a)
    assert stable == pytest.approx(direct, rel=1e-5, abs=1e-7)


@given(u=st.floats(min_value=0.0, max_value=2000.0), s=sets, a=assocs)
@settings(max_examples=100, deadline=None)
def test_collision_methods_close_for_fractional_u(u, s, a):
    # Fractional u perturbs the truncated generalized binomial's mean by
    # up to the overcount mass (worst ~6% near u = 0.5); the methods
    # agree within that band, tightening as u grows.
    direct = collisions_direct(u, s, a)
    stable = collisions_stable(u, s, a)
    assert stable == pytest.approx(direct, rel=0.25, abs=0.25)


@given(u=st.floats(min_value=0.0, max_value=2000.0), s=sets, a=assocs)
@settings(max_examples=150, deadline=None)
def test_collisions_within_bounds(u, s, a):
    value = collisions(u, s, a)
    assert -1e-9 <= value <= u + 1e-9


@given(u=st.floats(min_value=1.0, max_value=2000.0), s=sets)
@settings(max_examples=80, deadline=None)
def test_collisions_decrease_with_associativity(u, s):
    values = [collisions(u, s, a) for a in range(1, 9)]
    for a, b in zip(values, values[1:]):
        assert a >= b - 1e-9
