"""Unit tests for repro.ahh.extended."""

import pytest

from repro.ahh.extended import (
    ExtendedItraceModeler,
    MissBreakdown,
    standalone_miss_estimate,
)
from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError, ModelError
from repro.trace.ranges import KIND_INSTR, RangeTrace


def loop_trace(n_blocks, repeats, block_bytes=64, base=0x1000):
    starts = [
        base + (i % n_blocks) * block_bytes
        for i in range(n_blocks * repeats)
    ]
    return RangeTrace.build(starts, [block_bytes] * len(starts), KIND_INSTR)


def phased_trace(n_phases, blocks_per_phase, repeats, block_bytes=64):
    """Distinct code regions visited phase after phase (drifting set)."""
    pieces = []
    for phase in range(n_phases):
        base = 0x1000 + phase * blocks_per_phase * block_bytes
        pieces.append(
            loop_trace(blocks_per_phase, repeats, block_bytes, base)
        )
    return RangeTrace.concatenate(pieces)


class TestExtendedModeler:
    def test_stationary_loop_has_no_drift(self):
        trace = loop_trace(n_blocks=8, repeats=40)
        words_per_iter = 8 * 16
        modeler = ExtendedItraceModeler(granule_size=words_per_iter * 4)
        modeler.process_trace(trace)
        params = modeler.finalize()
        assert params.first_granule_unique == words_per_iter
        assert params.new_words_per_granule == 0.0
        assert params.base.p1 == 0.0  # pure runs

    def test_phased_trace_measures_drift(self):
        trace = phased_trace(n_phases=5, blocks_per_phase=4, repeats=10)
        words_per_phase = 4 * 16
        modeler = ExtendedItraceModeler(
            granule_size=words_per_phase * 10  # one granule per phase
        )
        modeler.process_trace(trace)
        params = modeler.finalize()
        assert params.first_granule_unique == words_per_phase
        # Each later granule brings a whole new phase of words.
        assert params.new_words_per_granule == pytest.approx(
            words_per_phase
        )

    def test_short_trace_raises(self):
        modeler = ExtendedItraceModeler(granule_size=100_000)
        modeler.process_trace(loop_trace(2, 2))
        with pytest.raises(ModelError, match="granule"):
            modeler.finalize()

    def test_bad_granule(self):
        with pytest.raises(ConfigurationError):
            ExtendedItraceModeler(1)


class TestStandaloneEstimate:
    def params_for(self, trace, granule_words):
        modeler = ExtendedItraceModeler(granule_size=granule_words)
        modeler.process_trace(trace)
        return modeler.finalize()

    def test_fitting_loop_predicts_only_startup(self):
        # An 8-block loop fits a 16KB cache: no drift, ~no collisions.
        trace = loop_trace(n_blocks=8, repeats=40)
        params = self.params_for(trace, granule_words=8 * 16 * 4)
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        breakdown = standalone_miss_estimate(params, config)
        assert breakdown.non_stationary == 0.0
        # Interference is negligible next to the cold fill (the binomial
        # occupancy model leaves a small residual collision probability).
        assert breakdown.intrinsic < 0.1 * breakdown.start_up
        # Start-up ~ the loop's 8 lines of 64B.
        assert breakdown.start_up == pytest.approx(8, rel=0.3)

    def test_phase_drift_adds_non_stationary(self):
        trace = phased_trace(n_phases=6, blocks_per_phase=4, repeats=10)
        params = self.params_for(trace, granule_words=4 * 16 * 10)
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        breakdown = standalone_miss_estimate(params, config)
        assert breakdown.non_stationary > breakdown.start_up

    def test_dilation_contracts_line(self):
        trace = loop_trace(n_blocks=32, repeats=10)
        params = self.params_for(trace, granule_words=512)
        config = CacheConfig.from_size(1024, 1, 32)
        plain = standalone_miss_estimate(params, config, dilation=1.0)
        dilated = standalone_miss_estimate(params, config, dilation=2.0)
        assert dilated.total > plain.total

    def test_bad_dilation(self):
        trace = loop_trace(4, 10)
        params = self.params_for(trace, granule_words=128)
        with pytest.raises(ModelError, match="dilation"):
            standalone_miss_estimate(
                params, CacheConfig(32, 1, 32), dilation=0
            )

    def test_breakdown_total(self):
        breakdown = MissBreakdown(1.0, 2.0, 3.0)
        assert breakdown.total == 6.0
