"""Unit tests for repro.ahh.modeler (TraceModeler)."""

import numpy as np
import pytest

from repro.ahh.modeler import (
    ItraceModeler,
    UtraceModeler,
    derive_trace_parameters,
)
from repro.errors import ModelError
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace


def sequential_itrace(n_blocks=100, block_bytes=64):
    """Blocks marching through memory: long runs, no isolated refs."""
    starts = [i * block_bytes for i in range(n_blocks)]
    return RangeTrace.build(starts, [block_bytes] * n_blocks, KIND_INSTR)


def scattered_dtrace(n=400, seed=3):
    rng = np.random.default_rng(seed)
    starts = (rng.integers(0, 1 << 16, size=n) * 4).tolist()
    return RangeTrace.build(starts, [4] * n, KIND_DATA)


class TestItraceModeler:
    def test_sequential_code_has_long_runs(self):
        modeler = ItraceModeler(granule_size=160)
        modeler.process_trace(sequential_itrace())
        params = modeler.finalize()
        assert params.p1 < 0.1  # almost nothing isolated
        assert params.lav > 10  # long sequential runs
        assert params.u1 == pytest.approx(160, rel=0.1)

    def test_ignores_data_component(self):
        modeler = ItraceModeler(granule_size=160)
        mixed = RangeTrace.concatenate(
            [sequential_itrace(), scattered_dtrace()]
        )
        modeler.process_trace(mixed)
        pure = ItraceModeler(granule_size=160)
        pure.process_trace(sequential_itrace())
        assert modeler.finalize() == pure.finalize()

    def test_too_short_trace_raises(self):
        modeler = ItraceModeler(granule_size=100_000)
        modeler.process_trace(sequential_itrace(n_blocks=5))
        with pytest.raises(ModelError, match="granule"):
            modeler.finalize()


class TestUtraceModeler:
    def test_components_separated(self):
        # Interleave sequential instruction ranges with scattered data.
        itrace = sequential_itrace(n_blocks=200)
        dtrace = scattered_dtrace(n=200)
        interleaved = RangeTrace(
            starts=np.stack([itrace.starts, dtrace.starts], axis=1).ravel(),
            sizes=np.stack([itrace.sizes, dtrace.sizes], axis=1).ravel(),
            kinds=np.stack([itrace.kinds, dtrace.kinds], axis=1).ravel(),
        )
        modeler = UtraceModeler(granule_size=800)
        modeler.process_trace(interleaved)
        instr, data = modeler.finalize()
        assert instr.lav > data.lav  # code runs, data scatters
        assert data.p1 > instr.p1

    def test_empty_trace_raises(self):
        modeler = UtraceModeler(granule_size=1000)
        with pytest.raises(ModelError, match="granule"):
            modeler.finalize()

    def test_granule_boundary_is_shared(self):
        # 10 instruction words then 10 data words per "visit"; granule of
        # 40 closes after two visits regardless of component balance.
        starts_i = [i * 40 for i in range(8)]
        trace = RangeTrace.build(
            [v for s in starts_i for v in (s, 1 << 20)],
            [40, 40] * 8,
            [KIND_INSTR, KIND_DATA] * 8,
        )
        modeler = UtraceModeler(granule_size=40)
        modeler.process_trace(trace)
        instr, data = modeler.finalize()
        assert instr.granules == data.granules >= 2


class TestDeriveTraceParameters:
    def test_returns_all_nine_parameters(self):
        itrace = sequential_itrace(n_blocks=300)
        dtrace = scattered_dtrace(n=300)
        unified = RangeTrace.concatenate([itrace, dtrace])
        params = derive_trace_parameters(
            itrace, unified, i_granule=200, u_granule=500
        )
        for component in (
            params.icache,
            params.unified_instr,
            params.unified_data,
        ):
            assert component.u1 > 0
            assert 0.0 <= component.p1 <= 1.0
            assert component.lav >= 1.0
