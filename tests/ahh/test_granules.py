"""Unit tests for repro.ahh.granules."""

import pytest

from repro.ahh.granules import GranuleAccumulator, granule_statistics
from repro.errors import ConfigurationError, ModelError


class TestGranuleStatistics:
    def test_empty(self):
        stats = granule_statistics([])
        assert stats.unique == 0
        assert stats.mean_run_length == 1.0

    def test_single_address_is_isolated(self):
        stats = granule_statistics([42, 42, 42])
        assert stats.unique == 1
        assert stats.isolated == 1
        assert stats.runs == 0

    def test_pure_run(self):
        stats = granule_statistics([10, 11, 12, 13])
        assert stats.unique == 4
        assert stats.isolated == 0
        assert stats.runs == 1
        assert stats.mean_run_length == 4.0

    def test_mixed_runs_and_isolated(self):
        # Runs: {1,2,3}, {10,11}; isolated: {7}, {100}.
        stats = granule_statistics([3, 1, 2, 7, 10, 11, 100])
        assert stats.unique == 7
        assert stats.isolated == 2
        assert stats.runs == 2
        assert stats.mean_run_length == pytest.approx(2.5)

    def test_duplicates_do_not_inflate_unique(self):
        stats = granule_statistics([1, 1, 2, 2, 3, 3])
        assert stats.unique == 3
        assert stats.runs == 1
        assert stats.run_length_total == 3

    def test_order_does_not_matter(self):
        a = granule_statistics([5, 1, 9, 2, 8])
        b = granule_statistics([1, 2, 5, 8, 9])
        assert a == b


class TestGranuleAccumulator:
    def test_granule_boundary_processing(self):
        acc = GranuleAccumulator(granule_size=4)
        acc.feed([1, 2, 3, 50])  # one full granule
        acc.feed([7])  # partial (1 < 4/2 -> dropped at finalize)
        assert acc.complete_granules == 1
        stats = acc.finalize()
        assert stats.granules == 1
        assert stats.u1 == 4.0
        assert stats.p1 == pytest.approx(1 / 4)
        assert stats.lav == pytest.approx(3.0)

    def test_half_full_tail_granule_is_kept(self):
        acc = GranuleAccumulator(granule_size=4)
        acc.feed([1, 2, 3, 4])
        acc.feed([10, 11])  # exactly half a granule
        stats = acc.finalize()
        assert stats.granules == 2

    def test_averaging_across_granules(self):
        acc = GranuleAccumulator(granule_size=3)
        acc.feed([1, 2, 3])  # u=3, run of 3
        acc.feed([10, 20, 30])  # u=3, all isolated
        stats = acc.finalize()
        assert stats.u1 == 3.0
        assert stats.p1 == pytest.approx(0.5)

    def test_empty_accumulator_raises(self):
        acc = GranuleAccumulator(granule_size=100)
        acc.feed([1, 2])
        with pytest.raises(ModelError, match="no complete granule"):
            acc.finalize()

    def test_references_counter(self):
        acc = GranuleAccumulator(granule_size=2)
        acc.feed([1, 2, 3, 4, 5])
        assert acc.references == 4  # two complete granules

    def test_bad_granule_size(self):
        with pytest.raises(ConfigurationError, match="granule size"):
            GranuleAccumulator(1)

    def test_numpy_input(self):
        import numpy as np

        acc = GranuleAccumulator(granule_size=3)
        acc.feed(np.array([1, 2, 3]))
        assert acc.complete_granules == 1
