"""Unit tests for repro.ahh.diagnostics."""

import pytest

from repro.ahh.diagnostics import (
    FitPoint,
    measured_unique_lines_per_granule,
    u_of_l_fit,
)
from repro.ahh.modeler import ItraceModeler
from repro.errors import ModelError
from repro.trace.ranges import KIND_INSTR, RangeTrace


def sequential_itrace(n_blocks=400, block_bytes=64):
    starts = [i * block_bytes for i in range(n_blocks)]
    return RangeTrace.build(starts, [block_bytes] * n_blocks, KIND_INSTR)


class TestMeasurement:
    def test_word_lines_equal_unique_words(self):
        trace = sequential_itrace()
        value = measured_unique_lines_per_granule(trace, 800, 4)
        assert value == 800.0  # all addresses distinct

    def test_lines_shrink_with_line_size(self):
        trace = sequential_itrace()
        values = [
            measured_unique_lines_per_granule(trace, 800, line)
            for line in (4, 8, 16, 32)
        ]
        assert values == sorted(values, reverse=True)
        assert values[1] == pytest.approx(values[0] / 2, rel=0.01)

    def test_short_trace_rejected(self):
        with pytest.raises(ModelError, match="shorter"):
            measured_unique_lines_per_granule(
                sequential_itrace(n_blocks=4), 10_000, 16
            )

    def test_bad_line_size(self):
        with pytest.raises(ModelError, match="multiple"):
            measured_unique_lines_per_granule(sequential_itrace(), 800, 6)


class TestFit:
    def test_sequential_trace_fits_tightly(self):
        """Pure runs: the derived u(L) is nearly exact."""
        trace = sequential_itrace()
        modeler = ItraceModeler(granule_size=800)
        modeler.process_trace(trace)
        params = modeler.finalize()
        report = u_of_l_fit(trace, params)
        assert report.max_relative_error < 0.1
        assert report.mean_relative_error <= report.max_relative_error

    def test_real_workload_fit_is_reasonable(self, tiny_pipeline):
        itrace = tiny_pipeline.reference_artifacts().instruction_trace
        params = tiny_pipeline.trace_parameters().icache
        report = u_of_l_fit(itrace, params, line_sizes=(4, 8, 16, 32))
        assert report.points[0].relative_error < 0.05  # u(1) anchors
        assert report.max_relative_error < 0.5

    def test_render(self, tiny_pipeline):
        itrace = tiny_pipeline.reference_artifacts().instruction_trace
        params = tiny_pipeline.trace_parameters().icache
        text = u_of_l_fit(itrace, params).render()
        assert "measured" in text and "modeled" in text


class TestFitPoint:
    def test_relative_error(self):
        assert FitPoint(16, 100.0, 110.0).relative_error == pytest.approx(0.1)
        assert FitPoint(16, 0.0, 0.0).relative_error == 0.0
        assert FitPoint(16, 0.0, 5.0).relative_error == float("inf")
