"""Unit tests for repro.ahh.params."""

import pytest

from repro.ahh.params import ComponentParameters, TraceParameters
from repro.errors import ModelError


def component(u1=100.0, p1=0.3, lav=4.0, granule=1000):
    return ComponentParameters(u1=u1, p1=p1, lav=lav, granule_size=granule)


class TestComponentParameters:
    def test_p2_property(self):
        params = component(p1=0.5, lav=5.0)
        assert params.p2 == pytest.approx((5.0 - 1.5) / 4.0)

    def test_unique_lines_in_words_and_bytes_agree(self):
        params = component()
        assert params.unique_lines_bytes(32.0) == pytest.approx(
            params.unique_lines_words(8.0)
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            component(u1=-1.0)
        with pytest.raises(ModelError):
            component(p1=1.5)
        with pytest.raises(ModelError):
            component(lav=0.9)


class TestTraceParameters:
    def make(self):
        return TraceParameters(
            icache=component(),
            unified_instr=component(u1=300.0, p1=0.1, lav=6.0),
            unified_data=component(u1=200.0, p1=0.5, lav=2.0),
        )

    def test_unified_unique_lines_no_dilation_is_component_sum(self):
        params = self.make()
        expected = params.unified_data.unique_lines_bytes(
            64.0
        ) + params.unified_instr.unique_lines_bytes(64.0)
        assert params.unified_unique_lines(64.0, 1.0) == pytest.approx(
            expected
        )

    def test_dilation_contracts_only_instruction_component(self):
        params = self.make()
        base = params.unified_unique_lines(64.0, 1.0)
        dilated = params.unified_unique_lines(64.0, 2.0)
        # Contracting the instruction line raises uI, so u(L,d) grows.
        assert dilated > base
        instr_only_delta = params.unified_instr.unique_lines_bytes(
            32.0
        ) - params.unified_instr.unique_lines_bytes(64.0)
        assert dilated - base == pytest.approx(instr_only_delta)

    def test_effective_line_clamped_at_one_word(self):
        params = self.make()
        # Dilation so large that L/d < 4 bytes: clamp, don't crash.
        value = params.unified_unique_lines(64.0, 1000.0)
        expected = params.unified_data.unique_lines_bytes(
            64.0
        ) + params.unified_instr.unique_lines_words(1.0)
        assert value == pytest.approx(expected)

    def test_non_positive_dilation_rejected(self):
        with pytest.raises(ModelError, match="dilation"):
            self.make().unified_unique_lines(64.0, 0.0)
