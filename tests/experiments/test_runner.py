"""Smoke tests for the experiment runners at tiny scale.

Structural checks only — the bench suite regenerates the paper-scale
numbers; here we verify every runner produces complete, well-formed,
correctly-normalized results quickly.
"""

import math

import pytest

from repro.experiments.runner import (
    RunnerSettings,
    get_pipeline,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table2,
    run_table3,
)

SMALL = RunnerSettings(
    scale=0.12, max_visits=2_500, i_granule=200, u_granule=1_000
)
BENCHES = ("epic", "099.go")


class TestPipelineCache:
    def test_same_settings_share_pipeline(self):
        a = get_pipeline("epic", SMALL)
        b = get_pipeline("epic", SMALL)
        assert a is b


class TestTable2:
    def test_structure_and_normalization(self):
        result = run_table2(benchmarks=BENCHES, settings=SMALL)
        assert set(result.data) == {"1 KB", "16 KB"}
        for per_bench in result.data.values():
            assert set(per_bench) == set(BENCHES)
            for ratios in per_bench.values():
                assert ratios["1111"] == pytest.approx(1.0)
                assert all(r > 0 for r in ratios.values())
        assert "Relative Data Cache Miss Rates" in result.render()


class TestTable3:
    def test_dilations_increase_with_width(self):
        result = run_table3(benchmarks=BENCHES, settings=SMALL)
        for bench in BENCHES:
            row = result.data[bench]
            assert row["1111"] == 1.0
            assert row["1111"] < row["2111"] < row["3221"]
            assert row["3221"] < row["4221"] <= row["6332"] + 0.2
        assert "Text Dilation" in result.render()


class TestFigure5:
    def test_cdfs_are_monotone_and_bounded(self):
        result = run_figure5(benchmarks=("epic",), settings=SMALL)
        series = result.curves["epic"]
        assert len(series) == 6  # 3 processors x static/dynamic
        for values in series.values():
            assert all(0.0 <= v <= 1.0 for v in values)
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
            assert values[-1] == pytest.approx(1.0)
        assert "Dilation distribution" in result.render()


class TestFigure6:
    def test_series_complete(self):
        result = run_figure6(
            "epic", settings=SMALL, dilations=(1.0, 2.0, 4.0)
        )
        assert len(result.series) == 4  # 2 icaches + 2 ucaches
        for pair in result.series.values():
            assert len(pair["dilated"]) == 3
            assert len(pair["estimated"]) == 3
            assert all(v >= 0 for v in pair["dilated"])
            assert all(
                not math.isnan(v) for v in pair["estimated"]
            )
        assert "Estimated and dilated" in result.render()

    def test_dilation_one_dilated_equals_estimated(self):
        result = run_figure6("epic", settings=SMALL, dilations=(1.0,))
        for pair in result.series.values():
            assert pair["dilated"][0] == pytest.approx(pair["estimated"][0])


class TestFigure7:
    def test_three_way_structure(self):
        result = run_figure7("epic", settings=SMALL)
        assert len(result.data) == 4
        for per_bench in result.data.values():
            per_proc = per_bench["epic"]
            assert set(per_proc) == {"2111", "3221", "4221", "6332"}
            for act, dil, est in per_proc.values():
                assert act > 0
                assert dil > 0
                assert est >= 0
        rendered = result.render()
        assert "Act" in rendered and "Dil" in rendered and "Est" in rendered
