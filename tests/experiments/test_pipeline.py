"""Unit tests for repro.experiments.pipeline."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError
from repro.machine.presets import P1111, P3221
from repro.machine.processor import make_processor


class TestArtifacts:
    def test_artifacts_are_cached(self, tiny_pipeline):
        a = tiny_pipeline.artifacts(P3221)
        b = tiny_pipeline.artifacts(P3221)
        assert a is b

    def test_reference_artifacts(self, tiny_pipeline):
        art = tiny_pipeline.reference_artifacts()
        assert art.processor.name == "1111"
        assert art.events.n_visits > 0
        assert len(art.instruction_trace) == art.events.n_visits

    def test_incompatible_features_rejected(self, tiny_pipeline):
        predicated = make_processor(2, 1, 1, 1, has_predication=True)
        with pytest.raises(ConfigurationError, match="predication"):
            tiny_pipeline.artifacts(predicated)

    def test_trace_role_accessor(self, tiny_pipeline):
        art = tiny_pipeline.reference_artifacts()
        assert art.trace("icache") is art.instruction_trace
        assert art.trace("dcache") is art.data_trace
        assert art.trace("unified") is art.unified_trace
        with pytest.raises(ConfigurationError):
            art.trace("l3")


class TestDilation:
    def test_reference_dilation_is_one(self, tiny_pipeline):
        assert tiny_pipeline.dilation(P1111) == 1.0

    def test_wider_processors_dilate(self, tiny_pipeline):
        assert tiny_pipeline.dilation(P3221) > 1.1

    def test_dilation_info_has_block_detail(self, tiny_pipeline):
        info = tiny_pipeline.dilation_info(P3221)
        assert len(info.block_keys) == len(info.block_dilations)
        assert info.text_dilation > 1.0


class TestTraceParameters:
    def test_cached_and_sane(self, tiny_pipeline):
        params = tiny_pipeline.trace_parameters()
        assert params is tiny_pipeline.trace_parameters()
        assert params.icache.u1 > 0
        assert params.icache.lav > 1.0  # code has runs
        assert params.unified_data.p1 >= 0.0


class TestMissMeasurements:
    CONFIG = CacheConfig.from_size(1024, 1, 32)

    def test_actual_misses_positive(self, tiny_pipeline):
        misses = tiny_pipeline.actual_misses(P1111, "icache", [self.CONFIG])
        assert misses[self.CONFIG] > 0

    def test_dilated_at_one_equals_reference_actual(self, tiny_pipeline):
        actual = tiny_pipeline.actual_misses(P1111, "icache", [self.CONFIG])
        dilated = tiny_pipeline.dilated_misses(1.0, "icache", [self.CONFIG])
        assert actual == dilated

    def test_estimated_at_one_equals_reference_actual(self, tiny_pipeline):
        actual = tiny_pipeline.actual_misses(P1111, "unified", [self.CONFIG])
        estimated = tiny_pipeline.estimated_misses(
            1.0, "unified", [self.CONFIG]
        )
        assert estimated[self.CONFIG] == pytest.approx(
            actual[self.CONFIG]
        )

    def test_dcache_dilated_is_reference(self, tiny_pipeline):
        ref = tiny_pipeline.actual_misses(P1111, "dcache", [self.CONFIG])
        dilated = tiny_pipeline.dilated_misses(2.5, "dcache", [self.CONFIG])
        assert ref == dilated

    def test_dilated_misses_grow_with_dilation(self, tiny_pipeline):
        small = tiny_pipeline.dilated_misses(1.0, "icache", [self.CONFIG])
        big = tiny_pipeline.dilated_misses(3.0, "icache", [self.CONFIG])
        assert big[self.CONFIG] > small[self.CONFIG]

    def test_estimated_misses_grow_with_dilation(self, tiny_pipeline):
        small = tiny_pipeline.estimated_misses(1.0, "icache", [self.CONFIG])
        big = tiny_pipeline.estimated_misses(3.0, "icache", [self.CONFIG])
        assert big[self.CONFIG] >= small[self.CONFIG]

    def test_lemma1_through_pipeline(self, tiny_pipeline):
        """Estimated misses at power-of-two dilation equal the dilated-
        trace simulation (Lemma 1 exactness, via the public API)."""
        config = CacheConfig.from_size(2048, 1, 32)
        estimated = tiny_pipeline.estimated_misses(2.0, "icache", [config])
        dilated = tiny_pipeline.dilated_misses(2.0, "icache", [config])
        assert estimated[config] == pytest.approx(dilated[config])

    def test_processor_cycles_provider(self, tiny_pipeline):
        narrow = tiny_pipeline.processor_cycles(P1111)
        wide = tiny_pipeline.processor_cycles(P3221)
        assert narrow > 0
        assert wide <= narrow
