"""Unit tests for repro.experiments.tables."""

from repro.experiments.tables import render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            "Title", ["a", "bb"], [[1, 2.5], ["x", 3.25]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "---" in lines[2] or "-" in lines[2]
        assert "2.50" in text  # default float format
        assert "3.25" in text

    def test_columns_aligned(self):
        text = render_table("T", ["col"], [["short"], ["a-longer-cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_custom_float_format(self):
        text = render_table("T", ["x"], [[0.123456]], float_format="{:.4f}")
        assert "0.1235" in text


class TestRenderSeries:
    def test_series_columns(self):
        text = render_series(
            "Fig",
            "dilation",
            [1.0, 2.0],
            {"dilated": [10.0, 20.0], "estimated": [11.0, 19.0]},
        )
        assert "dilation" in text
        assert "dilated" in text
        assert "estimated" in text
        assert "20" in text
