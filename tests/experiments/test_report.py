"""Unit tests for repro.experiments.report."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import SECTIONS, build_report, save_report


@pytest.fixture
def results(tmp_path):
    (tmp_path / "table3.txt").write_text("Text Dilation\n...rows...\n")
    (tmp_path / "costmodel.txt").write_text("466 days\n")
    return tmp_path


class TestBuildReport:
    def test_includes_available_sections(self, results):
        report = build_report(results)
        assert "# Reproduction run report" in report
        assert "Table 3 — text dilation" in report
        assert "Text Dilation" in report
        assert "466 days" in report

    def test_lists_missing_sections(self, results):
        report = build_report(results)
        assert "Not regenerated in this run" in report
        assert "`table4`" in report

    def test_sections_in_presentation_order(self, results):
        report = build_report(results)
        assert report.index("Table 3") < report.index("Section 1")

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            build_report(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no known result"):
            build_report(tmp_path)

    def test_custom_title(self, results):
        assert build_report(results, title="Run 7").startswith("# Run 7")

    def test_all_section_stems_unique(self):
        stems = [stem for stem, _ in SECTIONS]
        assert len(stems) == len(set(stems))


class TestSaveReport:
    def test_writes_file(self, results, tmp_path):
        out = save_report(results, tmp_path / "out" / "report.md")
        assert out.exists()
        assert "Text Dilation" in out.read_text()
