"""Unit tests for repro.experiments.multiref."""

import pytest

from repro.cache.config import CacheConfig
from repro.experiments.multiref import (
    MultiReferencePipeline,
    feature_key,
    make_reference_for,
)
from repro.machine.processor import make_processor
from repro.workloads.suite import tiny_workload


@pytest.fixture(scope="module")
def multi():
    return MultiReferencePipeline(
        tiny_workload(), max_visits=2_000, i_granule=200, u_granule=800
    )


PLAIN = make_processor(3, 2, 2, 1)
PRED = make_processor(3, 2, 2, 1, has_predication=True)
NOSPEC = make_processor(3, 2, 2, 1, has_speculation=False)


class TestRouting:
    def test_feature_key(self):
        assert feature_key(PLAIN) == (False, True)
        assert feature_key(PRED) == (True, True)
        assert feature_key(NOSPEC) == (False, False)

    def test_reference_matches_target_features(self):
        for target in (PLAIN, PRED, NOSPEC):
            reference = make_reference_for(target)
            assert reference.digit_name == "1111"
            assert target.compatible_reference(reference)

    def test_one_pipeline_per_feature_combo(self, multi):
        a = multi.pipeline_for(PLAIN)
        b = multi.pipeline_for(make_processor(6, 3, 3, 2))
        c = multi.pipeline_for(PRED)
        assert a is b  # same feature combination
        assert a is not c
        assert len(multi.references) == 2

    def test_predicated_target_evaluable(self, multi):
        """Without multi-reference routing this raises (Section 4.1)."""
        dilation = multi.dilation(PRED)
        assert dilation > 1.0
        config = CacheConfig.from_size(1024, 1, 32)
        estimated = multi.estimated_misses_for(PRED, "icache", [config])
        assert estimated[config] > 0

    def test_cycles_and_actual_routing(self, multi):
        assert multi.processor_cycles(NOSPEC) > 0
        config = CacheConfig.from_size(1024, 1, 32)
        actual = multi.actual_misses(NOSPEC, "icache", [config])
        assert actual[config] > 0

    def test_dilation_is_against_matching_reference(self, multi):
        # The predicated 3221 dilates against a *predicated* 1111; its
        # dilation is finite and sane even though the plain reference
        # would reject it.
        assert 1.0 < multi.dilation(PRED) < 4.0
