"""Unit tests for repro.experiments.export."""

import csv
import io

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.export import (
    figure5_csv,
    figure6_csv,
    save_csv,
    table2_csv,
    table3_csv,
    three_way_csv,
    to_csv,
)
from repro.experiments.runner import (
    Figure5Result,
    Figure6Result,
    Table2Result,
    Table3Result,
    ThreeWayResult,
)


def parse(text):
    return list(csv.reader(io.StringIO(text)))


@pytest.fixture
def table2():
    return Table2Result(
        data={"1 KB": {"epic": {"1111": 1.0, "2111": 1.05}}},
        processors=("1111", "2111"),
    )


@pytest.fixture
def table3():
    return Table3Result(
        data={"epic": {"1111": 1.0, "6332": 2.7}},
        processors=("1111", "6332"),
    )


@pytest.fixture
def three_way():
    return ThreeWayResult(
        data={"1 KB Icache": {"epic": {"2111": (1.2, 1.3, 1.25)}}},
        processors=("2111",),
    )


class TestExporters:
    def test_table2(self, table2):
        rows = parse(table2_csv(table2))
        assert rows[0] == ["cache", "benchmark", "processor", "relative_misses"]
        assert ["1 KB", "epic", "2111", "1.05"] in rows

    def test_table3(self, table3):
        rows = parse(table3_csv(table3))
        assert ["epic", "6332", "2.7"] in rows

    def test_three_way(self, three_way):
        rows = parse(three_way_csv(three_way))
        assert rows[1] == ["1 KB Icache", "epic", "2111", "1.2", "1.3", "1.25"]

    def test_figure5(self):
        result = Figure5Result(
            thresholds=np.array([1.0, 2.0]),
            curves={
                "epic": {("static", "2111"): np.array([0.25, 1.0])}
            },
        )
        rows = parse(figure5_csv(result))
        assert ["epic", "static", "2111", "2", "1"] in rows

    def test_figure6(self):
        result = Figure6Result(
            benchmark="epic",
            dilations=(1.0, 2.0),
            series={"1 KB Icache": {"dilated": [10.0, 20.0], "estimated": [10.0, 21.0]}},
        )
        rows = parse(figure6_csv(result))
        assert ["1 KB Icache", "2", "20", "21"] in rows


class TestDispatch:
    def test_to_csv_dispatches(self, table2, table3, three_way):
        assert "relative_misses" in to_csv(table2)
        assert "text_dilation" in to_csv(table3)
        assert "estimated" in to_csv(three_way)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError, match="exporter"):
            to_csv(object())

    def test_save_csv(self, table3, tmp_path):
        path = save_csv(table3, tmp_path / "sub" / "t3.csv")
        assert path.exists()
        assert "6332" in path.read_text()
