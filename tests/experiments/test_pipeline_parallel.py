"""ExperimentPipeline.prime_actual: parallel priming == serial results."""

from repro.cache.config import CacheConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.machine.presets import P1111, P3221

CONFIGS = [
    CacheConfig.from_size(512, 1, 16),
    CacheConfig.from_size(1024, 2, 16),
    CacheConfig.from_size(1024, 1, 32),
]
ROLE_CONFIGS = {"icache": CONFIGS, "dcache": CONFIGS}


def make_pipeline(tiny):
    return ExperimentPipeline(tiny, max_visits=2_000, i_granule=200, u_granule=800)


class TestPrimeActual:
    def test_serial_prime_then_lookup(self, tiny):
        pipeline = make_pipeline(tiny)
        passes = pipeline.prime_actual([P1111, P3221], ROLE_CONFIGS)
        # 2 processors x 2 roles x 2 line sizes.
        assert passes == 8
        # Everything below is answered from the primed banks.
        for processor in (P1111, P3221):
            for role in ("icache", "dcache"):
                misses = pipeline.actual_misses(processor, role, CONFIGS)
                assert set(misses) == set(CONFIGS)
        bank = pipeline._sim_banks["actual:" + P1111.name]
        assert bank.simulation_passes == 4

    def test_parallel_prime_matches_serial(self, tiny):
        serial = make_pipeline(tiny)
        parallel = make_pipeline(tiny)
        serial.prime_actual([P1111, P3221], ROLE_CONFIGS)
        passes = parallel.prime_actual(
            [P1111, P3221], ROLE_CONFIGS, max_workers=2
        )
        assert passes == 8
        for processor in (P1111, P3221):
            for role in ("icache", "dcache"):
                assert parallel.actual_misses(processor, role, CONFIGS) == (
                    serial.actual_misses(processor, role, CONFIGS)
                )

    def test_second_prime_is_free(self, tiny):
        pipeline = make_pipeline(tiny)
        pipeline.prime_actual([P1111], ROLE_CONFIGS)
        assert pipeline.prime_actual([P1111], ROLE_CONFIGS) == 0
