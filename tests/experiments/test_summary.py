"""Unit tests for repro.experiments.summary."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ThreeWayResult
from repro.experiments.summary import (
    ErrorStats,
    error_summary,
    relative_errors,
    render_error_summary,
)


@pytest.fixture
def result():
    # act, dil, est triples crafted for known errors.
    return ThreeWayResult(
        data={
            "1 KB Icache": {
                "epic": {
                    "2111": (1.0, 1.0, 1.1),  # est err 0.1, dil err 0.0
                    "6332": (2.0, 2.2, 3.0),  # est err 0.5, dil err 0.1
                },
            },
            "16 K Ucache": {
                "epic": {
                    "2111": (1.0, 1.0, 1.2),  # est err 0.2
                    "6332": (1.0, 1.0, 2.0),  # est err 1.0
                },
            },
        },
        processors=("2111", "6332"),
    )


class TestRelativeErrors:
    def test_all_cells(self, result):
        errors = relative_errors(result)
        assert len(errors) == 4
        assert pytest.approx(sorted(errors)) == [0.1, 0.2, 0.5, 1.0]

    def test_role_filter(self, result):
        icache = relative_errors(result, role="icache")
        assert pytest.approx(sorted(icache)) == [0.1, 0.5]

    def test_processor_filter(self, result):
        narrow = relative_errors(result, processor="2111")
        assert pytest.approx(sorted(narrow)) == [0.1, 0.2]

    def test_dilated_series(self, result):
        dilated = relative_errors(result, series="dilated", role="icache")
        assert pytest.approx(sorted(dilated)) == [0.0, 0.1]

    def test_unknown_series(self, result):
        with pytest.raises(ConfigurationError, match="series"):
            relative_errors(result, series="wishful")


class TestErrorStats:
    def test_aggregation(self):
        stats = ErrorStats.from_errors([0.1, 0.2, 0.3, 0.4])
        assert stats.n == 4
        assert stats.mean == pytest.approx(0.25)
        assert stats.median == pytest.approx(0.25)
        assert stats.worst == 0.4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="no errors"):
            ErrorStats.from_errors([])


class TestSummary:
    def test_headline_slices_present(self, result):
        summary = error_summary(result)
        assert "estimated/icache" in summary
        assert "dilated/unified" in summary
        assert "estimated/6332" in summary

    def test_narrow_beats_wide_in_fixture(self, result):
        summary = error_summary(result)
        assert (
            summary["estimated/2111"].mean < summary["estimated/6332"].mean
        )

    def test_render(self, result):
        text = render_error_summary(result)
        assert "slice" in text and "median" in text
        assert "estimated/icache" in text
