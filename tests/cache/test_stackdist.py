"""Property and unit tests for the offline stack-distance kernel.

The kernel (:mod:`repro.cache.stackdist`) replaces the scalar survivor
loop; its correctness contract is *bit-identical histograms*.  Two
oracles pin it down:

* a direct per-segment Python LRU stack (the `_touch` algorithm,
  inlined here so the oracle stays independent of the engine code), for
  :func:`stack_distances` on explicit partitions, and
* the preserved scalar engine (``engine="scalar"``) through the full
  ``line_stream -> simulate`` path, for whole-simulator equivalence on
  adversarial traces.

Forced-parameter tests drive every internal tier (tail scan, staged
expansion, bit-sliced dominance) over the same inputs, so tier
selection can never change results.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.cheetah import CheetahSimulator
from repro.cache.stackdist import (
    count_left_less,
    partition_by_set,
    refine_partition,
    stack_distances,
)

assoc_grid = (1, 2, 4, 8)


def oracle_hist(part, seg_lens, max_assoc):
    """Truncated per-segment LRU stacks, exactly the scalar `_touch`."""
    hist = [0] * (max_assoc + 1)
    pos = 0
    for length in np.asarray(seg_lens).tolist():
        stack = []
        for line in np.asarray(part[pos : pos + length]).tolist():
            if line in stack:
                depth = stack.index(line)
                hist[depth] += 1
                stack.insert(0, stack.pop(depth))
            else:
                hist[max_assoc] += 1
                stack.insert(0, line)
                del stack[max_assoc:]
        pos += length
    return hist


def kernel_hist(lines, nsets, max_assoc, **kernel_kwargs):
    part, seg_lens, _, _ = partition_by_set(lines, nsets)
    dist, info = stack_distances(part, seg_lens, max_assoc, **kernel_kwargs)
    return np.bincount(dist, minlength=max_assoc + 1).tolist(), info


@st.composite
def alternating_streams(draw):
    """Alternation-heavy streams: tiny pools revisited constantly.

    These defeat windowed scanning (the previous occurrence is near, but
    the *distinct* count between occurrences is what matters) and are
    what the scalar engine's period-2 pre-pass was built for.
    """
    pool = draw(st.integers(min_value=2, max_value=5))
    lines = draw(
        st.lists(
            st.integers(min_value=0, max_value=pool - 1),
            min_size=2,
            max_size=300,
        )
    )
    stride = draw(st.sampled_from([1, 3, 64]))
    return np.asarray(lines, dtype=np.int64) * stride


@st.composite
def general_streams(draw):
    span = draw(st.integers(min_value=1, max_value=400))
    lines = draw(
        st.lists(
            st.integers(min_value=0, max_value=span),
            min_size=1,
            max_size=400,
        )
    )
    return np.asarray(lines, dtype=np.int64)


line_streams = st.one_of(alternating_streams(), general_streams())


@given(lines=line_streams, nsets=st.sampled_from([1, 2, 8, 32]))
@settings(max_examples=80, deadline=None)
def test_kernel_matches_lru_oracle(lines, nsets):
    part, seg_lens, _, _ = partition_by_set(lines, nsets)
    for max_assoc in assoc_grid:
        dist, _ = stack_distances(part, seg_lens, max_assoc)
        got = np.bincount(dist, minlength=max_assoc + 1).tolist()
        assert got == oracle_hist(part, seg_lens, max_assoc)


@given(lines=line_streams)
@settings(max_examples=40, deadline=None)
def test_direct_mapped_shared_bucket_edge(lines):
    # max_assoc=1: hist[0] is "hit at depth 0", hist[1] is *everything*
    # else (misses and truncated survivors share one bucket).
    got, _ = kernel_hist(lines, 4, 1)
    part, seg_lens, _, _ = partition_by_set(lines, 4)
    assert got == oracle_hist(part, seg_lens, 1)
    assert sum(got) == len(lines)


@given(lines=general_streams())
@settings(max_examples=40, deadline=None)
def test_forced_tiers_agree(lines):
    # Starve the scan window and the expansion budget so the same
    # stream runs through ever-deeper tiers; distances must not move.
    baseline, _ = kernel_hist(lines, 2, 4)
    tiny_scan, _ = kernel_hist(lines, 2, 4, base_window=1, max_window=2)
    forced_dom, info = kernel_hist(
        lines, 2, 4, base_window=1, max_window=1, expand_budget=1
    )
    assert tiny_scan == baseline
    assert forced_dom == baseline


def test_dominance_tier_actually_engages():
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 5_000, 20_000)
    baseline, _ = kernel_hist(lines, 4, 8)
    forced, info = kernel_hist(
        lines, 4, 8, base_window=1, max_window=1, expand_budget=1
    )
    assert forced == baseline
    assert "dominance" in info["path"]


@st.composite
def range_traces(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    starts = draw(
        st.lists(
            st.integers(min_value=0, max_value=2048).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=160), min_size=n, max_size=n)
    )
    return starts, sizes


@given(trace=range_traces(), line=st.sampled_from([16, 32, 64]))
@settings(max_examples=60, deadline=None)
def test_kernel_engine_matches_scalar_engine_full_path(trace, line):
    # Full line_stream -> simulate path; every trace here is shorter
    # than SCALAR_BATCH_LIMIT, so engine="kernel" must be forced — this
    # is exactly the stream-shorter-than-pre-pass-window regime.
    starts, sizes = trace
    sets = [1, 4, 16]
    kernel = CheetahSimulator(line, sets, max_assoc=8, engine="kernel")
    scalar = CheetahSimulator(line, sets, max_assoc=8, engine="scalar")
    kernel.simulate(starts, sizes)
    scalar.simulate(starts, sizes)
    assert kernel.state() == scalar.state()


@pytest.mark.parametrize(
    "lines",
    [
        np.zeros(5_000, dtype=np.int64),  # one line forever: all dups
        np.repeat(np.arange(2_000), 3),  # every line thrice in a row
        np.tile(np.array([0, 64, 0, 64, 7]), 1_000),  # dup-free alternation
    ],
    ids=["all-dups", "triple-runs", "alternation"],
)
def test_dup_compaction_and_ladder_adoption_edges(lines):
    # Streams dense or empty in immediate repeats, long enough that the
    # auto engine takes the kernel and its dup-compaction + survivor
    # ladder; the scalar engine is the oracle.
    starts = lines * 64
    sizes = np.ones(len(lines), dtype=np.int64)
    sets = [1, 2, 4, 8, 16]
    kernel = CheetahSimulator(64, sets, max_assoc=4, engine="kernel")
    scalar = CheetahSimulator(64, sets, max_assoc=4, engine="scalar")
    kernel.simulate(starts, sizes)
    scalar.simulate(starts, sizes)
    assert kernel.state() == scalar.state()


# ----------------------------------------------------------------------
# Unit tests for the kernel's building blocks.
# ----------------------------------------------------------------------


def brute_count_left_less(v, g0, gnext):
    out = np.zeros(len(v), dtype=np.int64)
    for i in range(len(v)):
        lo = g0[i]
        out[i] = int(np.sum(v[lo:i] < v[i]))
    return out


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_count_left_less_matches_brute_force(data):
    ngroups = data.draw(st.integers(min_value=1, max_value=4))
    v_parts, g0_parts, gnext_parts = [], [], []
    pos = 0
    for _ in range(ngroups):
        size = data.draw(st.integers(min_value=1, max_value=60))
        # Distinct within the group, as stack_distances guarantees.
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=500),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        v_parts.extend(values)
        g0_parts.extend([pos] * size)
        gnext_parts.extend([pos + size] * size)
        pos += size
    v = np.asarray(v_parts, dtype=np.int64)
    g0 = np.asarray(g0_parts, dtype=np.intp)
    gnext = np.asarray(gnext_parts, dtype=np.intp)
    want = brute_count_left_less(v, g0, gnext).tolist()
    # Default cutoff and a cutoff of 1 (forces the radix splits deep).
    assert count_left_less(v, g0, gnext).tolist() == want
    assert count_left_less(v, g0, gnext, brute_below=1).tolist() == want


def test_partition_by_set_contract():
    rng = np.random.default_rng(1)
    lines = rng.integers(0, 1_000, 500)
    part, seg_lens, seg_sets, order = partition_by_set(lines, 8)
    assert int(seg_lens.sum()) == len(lines)
    assert np.array_equal(part, lines[order])
    ends = np.cumsum(seg_lens)
    for seg, (lo, hi) in enumerate(zip(ends - seg_lens, ends)):
        assert np.all(part[lo:hi] & 7 == seg_sets[seg])
        # Stability: within-set order is stream order.
        src = order[lo:hi]
        assert np.all(np.diff(src) > 0)

    # nsets=1 is the identity partition: no permutation materialized.
    part1, lens1, sets1, order1 = partition_by_set(lines, 1)
    assert part1 is lines and order1 is None
    assert lens1.tolist() == [len(lines)] and sets1.tolist() == [0]


@pytest.mark.parametrize("old,new", [(1, 2), (2, 8), (4, 64)])
def test_refine_partition_matches_fresh_partition(old, new):
    rng = np.random.default_rng(2)
    lines = rng.integers(0, 4_096, 2_000)
    part, seg_lens, seg_sets, order = partition_by_set(lines, old)
    if order is None:
        order = np.arange(len(lines), dtype=np.intp)
    rpart, rlens, rsets, rorder = refine_partition(
        part, seg_lens, seg_sets, old, new, order
    )
    assert int(rlens.sum()) == len(lines)
    # The carried permutation must keep mapping the stream into the
    # refined layout (this is what shared occurrence links ride on).
    assert np.array_equal(rpart, lines[rorder])
    # Segment *order* differs from a fresh sort, but per-set contents
    # (and their within-set stream order) must be identical.
    fpart, flens, fsets, forder = partition_by_set(lines, new)
    fends = np.cumsum(flens)
    fresh = {
        int(s): fpart[lo:hi]
        for s, lo, hi in zip(fsets, fends - flens, fends)
    }
    rends = np.cumsum(rlens)
    for s, lo, hi in zip(rsets, rends - rlens, rends):
        assert np.array_equal(rpart[lo:hi], fresh[int(s)])


def test_refine_partition_rejects_non_multiple():
    part, seg_lens, seg_sets, _ = partition_by_set(np.arange(16), 4)
    with pytest.raises(ValueError):
        refine_partition(part, seg_lens, seg_sets, 4, 6)


def test_stack_distances_links_shortcut_matches_internal_sort():
    rng = np.random.default_rng(3)
    lines = rng.integers(0, 300, 3_000).astype(np.int64)
    part, seg_lens, _, order = partition_by_set(lines, 4)
    # Stream-level links: consecutive occurrences of equal values.
    order_v = np.argsort(lines, kind="stable")
    sv = lines[order_v]
    eq = np.flatnonzero(sv[1:] == sv[:-1])
    inv = np.empty(len(lines), dtype=np.int64)
    inv[order] = np.arange(len(lines))
    links = (inv[order_v[eq]], inv[order_v[eq + 1]])
    for max_assoc in (1, 4):
        with_links, _ = stack_distances(part, seg_lens, max_assoc, links=links)
        without, _ = stack_distances(part, seg_lens, max_assoc)
        assert np.array_equal(with_links, without)
