"""Incremental feeding vs one batch pass: the engines must agree exactly.

The stack-distance kernel carries LRU state across ``consume`` calls
through lazily rebuilt truncated stacks and synthetic-prefix splicing;
these tests pin the regression surface: any interleaving of
``access_line``, ``simulate`` and ``consume`` over a trace must produce
state bit-identical to one pure batch ``simulate`` over the
concatenation — regardless of which engine each increment picked.
"""

import numpy as np
import pytest

from repro.cache.cheetah import SCALAR_BATCH_LIMIT, CheetahSimulator
from repro.cache.linestream import line_stream
from repro.errors import ConfigurationError

LINE = 32
SETS = [1, 4, 16, 64]
ASSOC = 4


def random_batches(seed, nbatches, *, span=20_000):
    """Range-trace batches of varied size and density.

    Mixes batches above and below SCALAR_BATCH_LIMIT (so the auto engine
    alternates scalar and kernel paths), and alternates dup-heavy
    sequential scans with dup-light uniform sprays so both the dup
    compaction and the native depth-0 scoring see batch boundaries.
    """
    rng = np.random.default_rng(seed)
    batches = []
    for i in range(nbatches):
        if i % 3 == 2:
            # Dup-heavy: sequential scan, every line hit twice in a row.
            base = int(rng.integers(0, span))
            n = int(rng.integers(50, 4_000))
            starts = np.repeat(np.arange(base, base + n * LINE, LINE), 2)
            sizes = np.full(len(starts), 4)
        else:
            n = int(rng.integers(10, 5_000))
            starts = rng.integers(0, span * LINE, n)
            sizes = rng.integers(1, 3 * LINE, n)
        batches.append((starts, sizes))
    return batches


def concat(batches):
    starts = np.concatenate([np.asarray(s, dtype=np.int64) for s, _ in batches])
    sizes = np.concatenate([np.asarray(z, dtype=np.int64) for _, z in batches])
    return starts, sizes


def batch_state(batches, engine="auto"):
    starts, sizes = concat(batches)
    sim = CheetahSimulator(LINE, SETS, max_assoc=ASSOC, engine=engine)
    sim.simulate(starts, sizes)
    return sim.state()


@pytest.mark.parametrize("engine", ["auto", "kernel", "scalar"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batched_simulate_equals_one_pass(engine, seed):
    batches = random_batches(seed, 6)
    sim = CheetahSimulator(LINE, SETS, max_assoc=ASSOC, engine=engine)
    for starts, sizes in batches:
        sim.simulate(starts, sizes)
    assert sim.state() == batch_state(batches)


@pytest.mark.parametrize("seed", [3, 4])
def test_access_line_interleaved_with_batches(seed):
    rng = np.random.default_rng(seed)
    batches = random_batches(seed, 4)
    sim = CheetahSimulator(LINE, SETS, max_assoc=ASSOC)
    reference = []
    for starts, sizes in batches:
        # A burst of single-line touches between batches: the kernel
        # must fold the scalar stacks in as a synthetic prefix, then
        # hand updated stacks back for the next scalar burst.
        for line in rng.integers(0, 2_000, 20).tolist():
            sim.access_line(line)
            reference.append((line * LINE, 1))
        sim.simulate(starts, sizes)
        reference.append((starts, sizes))
    normalized = [
        (np.atleast_1d(np.asarray(s)), np.atleast_1d(np.asarray(z)))
        for s, z in reference
    ]
    assert sim.state() == batch_state(normalized)


def test_forced_kernel_on_tiny_batches_matches_scalar():
    # Below SCALAR_BATCH_LIMIT the auto engine would pick the scalar
    # path; forcing the kernel on the same tiny batches must agree.
    batches = random_batches(5, 8)
    tiny = [(s[:100], z[:100]) for s, z in batches]
    assert all(len(s) <= SCALAR_BATCH_LIMIT for s, _ in tiny)
    kernel = CheetahSimulator(LINE, SETS, max_assoc=ASSOC, engine="kernel")
    scalar = CheetahSimulator(LINE, SETS, max_assoc=ASSOC, engine="scalar")
    for starts, sizes in tiny:
        kernel.simulate(starts, sizes)
        scalar.simulate(starts, sizes)
    assert kernel.state() == scalar.state()


def test_consume_prebuilt_streams_equals_batch():
    batches = random_batches(6, 5)
    sim = CheetahSimulator(LINE, SETS, max_assoc=ASSOC)
    for starts, sizes in batches:
        sim.consume(line_stream(starts, sizes, LINE))
    assert sim.state() == batch_state(batches)


def test_state_round_trip_answers_identical_queries():
    batches = random_batches(7, 5)
    sim = CheetahSimulator(LINE, SETS, max_assoc=ASSOC)
    for starts, sizes in batches:
        sim.simulate(starts, sizes)
    accesses, hists = sim.state()
    rebuilt = CheetahSimulator.from_state(LINE, ASSOC, accesses, hists)
    assert rebuilt.state() == (accesses, hists)
    for nsets in SETS:
        for assoc in (1, 2, ASSOC):
            assert rebuilt.misses(nsets, assoc) == sim.misses(nsets, assoc)
    with pytest.raises(ConfigurationError):
        rebuilt.access_line(0)
    with pytest.raises(ConfigurationError):
        rebuilt.simulate([0], [1])
