"""Unit tests for repro.cache.cheetah (single-pass multi-config simulator)."""

import random

import pytest

from repro.cache.cheetah import CheetahSimulator, simulate_many
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.errors import ConfigurationError


def random_trace(n, seed=0, span=4096):
    rng = random.Random(seed)
    starts, sizes = [], []
    for _ in range(n):
        if rng.random() < 0.5:
            # Instruction-like range.
            starts.append(rng.randrange(0, span, 4))
            sizes.append(rng.choice([8, 16, 24, 40, 64]))
        else:
            starts.append(rng.randrange(0, span, 4))
            sizes.append(4)
    return starts, sizes


class TestCheetahVsDirect:
    @pytest.mark.parametrize("sets", [1, 8, 32])
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_matches_direct_simulator(self, sets, assoc):
        starts, sizes = random_trace(600, seed=sets * 10 + assoc)
        sim = CheetahSimulator(16, [sets], max_assoc=4)
        sim.simulate(starts, sizes)
        config = CacheConfig(sets, assoc, 16)
        direct = simulate_trace(config, starts, sizes)
        assert sim.misses(sets, assoc) == direct.misses
        assert sim.accesses == direct.accesses

    def test_multiple_set_counts_in_one_pass(self):
        starts, sizes = random_trace(500, seed=7)
        sim = CheetahSimulator(32, [8, 16, 64], max_assoc=8)
        sim.simulate(starts, sizes)
        for sets in (8, 16, 64):
            for assoc in (1, 3, 8):
                direct = simulate_trace(
                    CacheConfig(sets, assoc, 32), starts, sizes
                )
                assert sim.misses(sets, assoc) == direct.misses


class TestStackDistanceProperties:
    def test_misses_non_increasing_in_assoc(self):
        starts, sizes = random_trace(800, seed=3)
        sim = CheetahSimulator(16, [16], max_assoc=8)
        sim.simulate(starts, sizes)
        misses = [sim.misses(16, a) for a in range(1, 9)]
        assert misses == sorted(misses, reverse=True)

    def test_incremental_feeding_equals_single_shot(self):
        starts, sizes = random_trace(400, seed=5)
        whole = CheetahSimulator(16, [8], max_assoc=4)
        whole.simulate(starts, sizes)
        pieces = CheetahSimulator(16, [8], max_assoc=4)
        pieces.simulate(starts[:150], sizes[:150])
        pieces.simulate(starts[150:], sizes[150:])
        assert whole.misses(8, 2) == pieces.misses(8, 2)

    def test_reset(self):
        starts, sizes = random_trace(100)
        sim = CheetahSimulator(16, [8], max_assoc=2)
        sim.simulate(starts, sizes)
        sim.reset()
        assert sim.accesses == 0
        assert sim.misses(8, 1) == 0


class TestApi:
    def test_untracked_set_count_rejected(self):
        sim = CheetahSimulator(16, [8], max_assoc=2)
        with pytest.raises(ConfigurationError, match="not tracked"):
            sim.misses(16, 1)

    def test_assoc_out_of_range_rejected(self):
        sim = CheetahSimulator(16, [8], max_assoc=2)
        with pytest.raises(ConfigurationError, match="outside"):
            sim.misses(8, 3)

    def test_duplicate_set_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            CheetahSimulator(16, [8, 8], max_assoc=2)

    def test_result_checks_line_size(self):
        sim = CheetahSimulator(16, [8], max_assoc=2)
        with pytest.raises(ConfigurationError, match="line size"):
            sim.result(CacheConfig(8, 1, 32))

    def test_results_enumerates_grid(self):
        starts, sizes = random_trace(50)
        sim = CheetahSimulator(16, [4, 8], max_assoc=2)
        sim.simulate(starts, sizes)
        results = sim.results()
        assert len(results) == 4  # 2 set counts x 2 associativities
        for config, result in results.items():
            assert result.config == config
            assert 0 <= result.misses <= result.accesses


class TestSimulateMany:
    def test_mixed_line_sizes_rejected(self):
        configs = [CacheConfig(8, 1, 16), CacheConfig(8, 1, 32)]
        with pytest.raises(ConfigurationError, match="common line size"):
            simulate_many(configs, [0], [4])

    def test_empty_config_list(self):
        assert simulate_many([], [0], [4]) == {}

    def test_results_match_direct(self):
        starts, sizes = random_trace(300, seed=11)
        configs = [
            CacheConfig(8, 1, 32),
            CacheConfig(8, 2, 32),
            CacheConfig(32, 1, 32),
        ]
        results = simulate_many(configs, starts, sizes)
        for config in configs:
            direct = simulate_trace(config, starts, sizes)
            assert results[config].misses == direct.misses
