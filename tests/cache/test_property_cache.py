"""Property-based tests for the cache simulators (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator, simulate_trace

line_sizes = st.sampled_from([4, 8, 16, 32])
set_counts = st.sampled_from([1, 2, 4, 8, 16])
assocs = st.integers(min_value=1, max_value=4)


@st.composite
def range_traces(draw, max_len=200):
    n = draw(st.integers(min_value=1, max_value=max_len))
    starts = draw(
        st.lists(
            st.integers(min_value=0, max_value=2048).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=16).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    return starts, sizes


@given(trace=range_traces(), sets=set_counts, assoc=assocs, line=line_sizes)
@settings(max_examples=60, deadline=None)
def test_cheetah_equals_direct_simulator(trace, sets, assoc, line):
    """The single-pass simulator is exactly the direct LRU simulator."""
    starts, sizes = trace
    direct = simulate_trace(CacheConfig(sets, assoc, line), starts, sizes)
    cheetah = CheetahSimulator(line, [sets], max_assoc=4)
    cheetah.simulate(starts, sizes)
    assert cheetah.misses(sets, assoc) == direct.misses
    assert cheetah.accesses == direct.accesses


@given(trace=range_traces(), sets=set_counts, line=line_sizes)
@settings(max_examples=40, deadline=None)
def test_misses_monotone_nonincreasing_in_associativity(trace, sets, line):
    """LRU inclusion: adding ways never adds misses (fixed sets, line)."""
    starts, sizes = trace
    cheetah = CheetahSimulator(line, [sets], max_assoc=6)
    cheetah.simulate(starts, sizes)
    misses = [cheetah.misses(sets, a) for a in range(1, 7)]
    assert all(a >= b for a, b in zip(misses, misses[1:]))


@given(trace=range_traces(), sets=set_counts, assoc=assocs, line=line_sizes)
@settings(max_examples=40, deadline=None)
def test_miss_bounds(trace, sets, assoc, line):
    """0 <= misses <= accesses, and at least the cold-unique lower bound."""
    starts, sizes = trace
    result = simulate_trace(CacheConfig(sets, assoc, line), starts, sizes)
    unique_lines = {
        line_index
        for start, size in zip(starts, sizes)
        for line_index in range(start // line, (start + size - 1) // line + 1)
    }
    capacity = sets * assoc
    assert 0 <= result.misses <= result.accesses
    # Every unique line must cold-miss at least once.
    assert result.misses >= len(unique_lines)
    # A cache big enough to hold everything only cold-misses.
    if len(unique_lines) <= sets:  # each set holds >= 1 line
        per_set: dict[int, int] = {}
        for line_index in unique_lines:
            per_set[line_index % sets] = per_set.get(line_index % sets, 0) + 1
        if max(per_set.values(), default=0) <= assoc:
            assert result.misses == len(unique_lines)
    del capacity


@given(trace=range_traces(max_len=100), line=line_sizes)
@settings(max_examples=30, deadline=None)
def test_stateful_simulator_agrees_with_batch(trace, line):
    starts, sizes = trace
    config = CacheConfig(8, 2, line)
    stateful = CacheSimulator(config)
    for start, size in zip(starts, sizes):
        stateful.access_range(start, size)
    batch = simulate_trace(config, starts, sizes)
    assert stateful.misses == batch.misses
    assert stateful.accesses == batch.accesses
