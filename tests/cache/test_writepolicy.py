"""Unit tests for repro.cache.writepolicy."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cache.writepolicy import simulate_write_policy
from repro.errors import ConfigurationError
from repro.trace.ranges import KIND_DATA, KIND_INSTR, KIND_WRITE, RangeTrace


def trace_of(entries):
    """entries: list of (start, size, kind)."""
    return RangeTrace.build(
        [e[0] for e in entries],
        [e[1] for e in entries],
        [e[2] for e in entries],
    )


CONFIG = CacheConfig(2, 1, 16)  # 2 sets, direct-mapped, 16B lines


class TestWriteBack:
    def test_read_only_trace_has_no_write_traffic(self):
        trace = trace_of([(0, 4, KIND_DATA), (64, 4, KIND_DATA)])
        result = simulate_write_policy(CONFIG, trace)
        assert result.writebacks == 0
        assert result.memory_writes == 0

    def test_miss_counts_match_write_oblivious_simulator(self):
        entries = [
            (0, 4, KIND_WRITE),
            (32, 4, KIND_DATA),
            (0, 4, KIND_DATA),
            (64, 4, KIND_WRITE),
            (0, 16, KIND_INSTR),
        ]
        trace = trace_of(entries)
        with_writes = simulate_write_policy(CONFIG, trace, "write-back")
        oblivious = simulate_trace(CONFIG, trace.starts, trace.sizes)
        # Write-allocate fills on store misses, so miss counts agree.
        assert with_writes.misses == oblivious.misses
        assert with_writes.accesses == oblivious.accesses

    def test_dirty_eviction_counts_writeback(self):
        # Line 0 (set 0) written, then line 2 (set 0) evicts it.
        trace = trace_of([(0, 4, KIND_WRITE), (32, 4, KIND_DATA)])
        result = simulate_write_policy(CONFIG, trace)
        assert result.writebacks == 1

    def test_clean_eviction_is_free(self):
        trace = trace_of([(0, 4, KIND_DATA), (32, 4, KIND_DATA)])
        result = simulate_write_policy(CONFIG, trace)
        assert result.writebacks == 0

    def test_rewrite_same_line_one_writeback(self):
        trace = trace_of(
            [
                (0, 4, KIND_WRITE),
                (4, 4, KIND_WRITE),
                (8, 4, KIND_WRITE),
                (32, 4, KIND_DATA),  # evicts the one dirty line
            ]
        )
        result = simulate_write_policy(CONFIG, trace)
        assert result.writebacks == 1

    def test_flush_at_end_counts_resident_dirty(self):
        trace = trace_of([(0, 4, KIND_WRITE), (16, 4, KIND_WRITE)])
        plain = simulate_write_policy(CONFIG, trace)
        flushed = simulate_write_policy(CONFIG, trace, flush_at_end=True)
        assert plain.writebacks == 0
        assert flushed.writebacks == 2

    def test_memory_traffic_accounting(self):
        trace = trace_of([(0, 4, KIND_WRITE), (32, 4, KIND_DATA)])
        result = simulate_write_policy(CONFIG, trace)
        # 2 fills + 1 writeback, 16B lines.
        assert result.memory_traffic_bytes == 3 * 16


class TestWriteThrough:
    def test_stores_always_write_memory(self):
        trace = trace_of(
            [(0, 4, KIND_WRITE), (0, 4, KIND_WRITE), (0, 4, KIND_DATA)]
        )
        result = simulate_write_policy(CONFIG, trace, "write-through")
        assert result.memory_writes == 2
        assert result.writebacks == 0

    def test_store_misses_do_not_allocate(self):
        # Store to line 0 (miss, no fill), then load line 0: still a miss.
        trace = trace_of([(0, 4, KIND_WRITE), (0, 4, KIND_DATA)])
        result = simulate_write_policy(CONFIG, trace, "write-through")
        assert result.misses == 2

    def test_store_hits_update_in_place(self):
        trace = trace_of(
            [(0, 4, KIND_DATA), (0, 4, KIND_WRITE), (0, 4, KIND_DATA)]
        )
        result = simulate_write_policy(CONFIG, trace, "write-through")
        assert result.misses == 1
        assert result.memory_writes == 1

    def test_traffic_model(self):
        trace = trace_of([(0, 4, KIND_DATA), (0, 4, KIND_WRITE)])
        result = simulate_write_policy(CONFIG, trace, "write-through")
        # One fill (16B) + one through-write (4B).
        assert result.memory_traffic_bytes == 16 + 4


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="policy"):
            simulate_write_policy(
                CONFIG, trace_of([(0, 4, KIND_DATA)]), "copy-back"
            )


class TestPipelineTraces:
    def test_real_data_trace_has_tagged_writes(self, tiny_pipeline):
        art = tiny_pipeline.reference_artifacts()
        dtrace = art.data_trace
        writes = int((dtrace.kinds == KIND_WRITE).sum())
        reads = int((dtrace.kinds == KIND_DATA).sum())
        assert writes > 0 and reads > 0
        assert reads > writes  # load_fraction > 0.5

    def test_writeback_misses_match_oblivious_on_real_trace(
        self, tiny_pipeline
    ):
        art = tiny_pipeline.reference_artifacts()
        dtrace = art.data_trace
        config = CacheConfig.from_size(1024, 1, 32)
        with_writes = simulate_write_policy(config, dtrace, "write-back")
        oblivious = simulate_trace(config, dtrace.starts, dtrace.sizes)
        assert with_writes.misses == oblivious.misses
        assert 0 < with_writes.writebacks <= with_writes.misses
