"""Unit tests for repro.cache.area."""

from repro.cache.area import cache_cost
from repro.cache.config import CacheConfig


class TestCacheCost:
    def test_bigger_caches_cost_more(self):
        sizes = [1, 2, 4, 8, 16, 128]
        costs = [
            cache_cost(CacheConfig.from_size(kb * 1024, 1, 32))
            for kb in sizes
        ]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_associativity_costs(self):
        direct = cache_cost(CacheConfig.from_size(16 * 1024, 1, 32))
        two_way = cache_cost(CacheConfig.from_size(16 * 1024, 2, 32))
        four_way = cache_cost(CacheConfig.from_size(16 * 1024, 4, 32))
        assert direct < two_way < four_way

    def test_ports_cost_superlinearly(self):
        one = cache_cost(CacheConfig(128, 2, 32, ports=1))
        two = cache_cost(CacheConfig(128, 2, 32, ports=2))
        assert two > 2 * one

    def test_small_lines_cost_more_tag_overhead(self):
        # Same capacity, smaller lines -> more tag entries -> more cost.
        fine = cache_cost(CacheConfig.from_size(16 * 1024, 1, 16))
        coarse = cache_cost(CacheConfig.from_size(16 * 1024, 1, 64))
        assert fine > coarse
