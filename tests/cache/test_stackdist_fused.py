"""Property tests for fused cross-size counting and parallel counting.

The fused kernel's contract is *bit-identical distances*: for any list
of counting problems, :func:`stack_distances_fused` must return exactly
what one :func:`stack_distances` call per problem returns — across
forced tiers (scan / expansion / dominance fallback), mixed ``vmax``
towers sharing one fused sort, precomputed links, empty and
single-segment problems.  On top of the kernel,
:class:`DesignSpaceSimulator` in ``mode="fused"`` and with
``count_parallelism`` > 1 (shm-shipped streams over the fault-tolerant
pool, including injected worker faults) must match the per-size
serial simulators state-for-state.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.cheetah import CheetahSimulator
from repro.cache.designspace import DesignSpaceSimulator
from repro.cache.linestream import clear_line_stream_cache
from repro.cache.stackdist import (
    CountProblem,
    partition_by_set,
    radix_argsort,
    stack_distances,
    stack_distances_fused,
)
from repro.runtime.executor import (
    ExecutorPolicy,
    FaultPlan,
    segment_manager,
    shm_available,
)

#: Kernel knobs forcing each tier (applied to fused and per-size alike).
TIER_KWARGS = (
    {},                                              # adaptive default
    {"base_window": 1, "max_window": 1},             # heavy expansion
    {"base_window": 1, "max_window": 1, "expand_budget": 8},  # dominance
    {"base_window": 2, "max_window": 4, "expand_budget": 64},
)


@st.composite
def count_problems(draw):
    """One counting problem plus its linking flavor.

    Flavors: ``vmax`` (joins the fused sort), ``links`` (precomputed,
    as the design-space tower derivation ships them), ``None`` (sorts
    alone inside the fused kernel, exercising the unknown-range path).
    """
    n = draw(st.integers(min_value=0, max_value=120))
    pool = draw(st.integers(min_value=1, max_value=24))
    lines = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=pool - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    ) * draw(st.sampled_from([1, 8]))
    nsets = draw(st.sampled_from([1, 2, 8]))
    max_assoc = draw(st.sampled_from([1, 2, 4, 8]))
    part, seg_lens, _, _ = partition_by_set(lines, nsets)
    vmax = int(lines.max()) if n else 0
    flavor = draw(st.sampled_from(["vmax", "links", "none"]))
    if flavor == "links":
        order = radix_argsort(part, vmax)
        pv = part[order]
        eq = np.flatnonzero(pv[1:] == pv[:-1])
        return CountProblem(
            part, seg_lens, max_assoc, links=(order[eq], order[eq + 1])
        )
    if flavor == "vmax":
        return CountProblem(part, seg_lens, max_assoc, vmax=vmax)
    return CountProblem(part, seg_lens, max_assoc)


class TestFusedKernel:
    @settings(max_examples=60, deadline=None)
    @given(
        problems=st.lists(count_problems(), min_size=1, max_size=5),
        tier=st.sampled_from(TIER_KWARGS),
    )
    def test_fused_matches_per_problem(self, problems, tier):
        results, fused_info = stack_distances_fused(problems, **tier)
        assert len(results) == len(problems)
        assert fused_info["refs"] == sum(len(p.part) for p in problems)
        for problem, (dist, info) in zip(problems, results):
            expect, einfo = stack_distances(
                problem.part,
                problem.seg_lens,
                problem.max_assoc,
                vmax=problem.vmax,
                links=problem.links,
                **tier,
            )
            assert np.array_equal(dist, expect)
            # recurs_idx is consumed as a membership mask; compare as sets
            assert set(np.asarray(info["recurs_idx"]).tolist()) == set(
                np.asarray(einfo["recurs_idx"]).tolist()
            )

    def test_no_problems(self):
        results, fused_info = stack_distances_fused([])
        assert results == []
        assert fused_info["refs"] == 0

    def test_all_empty_problems(self):
        empty = CountProblem(
            np.empty(0, np.int64), np.array([0], dtype=np.intp), 4, vmax=0
        )
        results, fused_info = stack_distances_fused([empty, empty])
        assert fused_info["refs"] == 0
        for dist, info in results:
            assert len(dist) == 0
            assert info["path"] == "scan"

    def test_single_reference_problems(self):
        one = CountProblem(
            np.array([7], dtype=np.int64),
            np.array([1], dtype=np.intp),
            2,
            vmax=7,
        )
        results, _ = stack_distances_fused([one, one])
        for dist, _info in results:
            assert dist.tolist() == [2]  # cold miss

    def test_mixed_vmax_ranges_share_one_sort(self):
        # Same value appearing in different problems must never link
        # across the problem boundary despite the shared sort.
        lines = np.array([3, 1, 3, 1, 3], dtype=np.int64)
        seg = np.array([5], dtype=np.intp)
        problems = [
            CountProblem(lines, seg, 4, vmax=3),
            CountProblem(lines, seg, 4, vmax=3),
            CountProblem(lines * 100, seg, 4, vmax=300),
        ]
        results, fused_info = stack_distances_fused(problems)
        assert fused_info["sorted_refs"] == 15
        for problem, (dist, _info) in zip(problems, results):
            expect, _ = stack_distances(
                problem.part, problem.seg_lens, 4, vmax=problem.vmax
            )
            assert np.array_equal(dist, expect)


def _spec():
    return {16: ([8, 32], 8), 32: ([8, 32], 8), 64: ([16], 4)}


def _trace(seed=5, n=4000):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 1 << 18, size=n),
        rng.integers(1, 64, size=n),
    )


def _reference_states(starts, sizes, spec):
    out = {}
    for line_size, (set_counts, max_assoc) in spec.items():
        sim = CheetahSimulator(line_size, set_counts, max_assoc)
        sim.simulate(starts, sizes)
        out[line_size] = sim.state()
    return out


class TestDesignSpaceFused:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_fused_mode_matches_per_size(self, seed):
        starts, sizes = _trace(seed=seed, n=600)
        spec = _spec()
        clear_line_stream_cache()
        reference = _reference_states(starts, sizes, spec)
        for mode in ("fused", "auto"):
            space = DesignSpaceSimulator(spec, engine="kernel", mode=mode)
            space.simulate(starts, sizes)
            assert space.states() == reference

    def test_auto_spills_to_per_size_above_ceiling(self, monkeypatch):
        # Above FUSE_MAX_REFS the auto cost model keeps per-family
        # dispatch (journaled as plain stackdist events); mode="fused"
        # ignores the ceiling.  Results identical either way.
        import repro.cache.designspace as ds_mod
        from repro.runtime.journal import RunJournal, use_journal

        monkeypatch.setattr(ds_mod, "FUSE_MAX_REFS", 64)
        starts, sizes = _trace(seed=9, n=800)
        spec = _spec()
        clear_line_stream_cache()
        reference = _reference_states(starts, sizes, spec)
        journal = RunJournal()
        clear_line_stream_cache()
        with use_journal(journal):
            space = DesignSpaceSimulator(spec, engine="kernel")
            space.simulate(starts, sizes)
        assert space.states() == reference
        assert not journal.select("stackdist_fused")
        assert journal.select("stackdist")
        assert all(
            not event["mode"].startswith("fused-")
            for event in journal.select("designspace")
        )
        forced = RunJournal()
        clear_line_stream_cache()
        with use_journal(forced):
            space = DesignSpaceSimulator(spec, engine="kernel", mode="fused")
            space.simulate(starts, sizes)
        assert space.states() == reference
        assert forced.select("stackdist_fused")

    def test_fused_mode_appendable(self):
        starts, sizes = _trace()
        spec = _spec()
        clear_line_stream_cache()
        reference = _reference_states(starts, sizes, spec)
        space = DesignSpaceSimulator(spec, mode="fused")
        space.simulate(starts[:2000], sizes[:2000])
        space.simulate(starts[2000:], sizes[2000:])
        assert space.states() == reference


@pytest.mark.skipif(not shm_available(), reason="needs POSIX shared memory")
class TestParallelCounting:
    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_count_parallelism_matches_serial(self, parallelism):
        starts, sizes = _trace()
        spec = _spec()
        clear_line_stream_cache()
        reference = _reference_states(starts, sizes, spec)
        policy = ExecutorPolicy(count_parallelism=parallelism)
        space = DesignSpaceSimulator(spec, policy=policy)
        space.simulate(starts, sizes)
        assert space.states() == reference
        assert segment_manager().active() == {}

    @pytest.mark.parametrize(
        "fault",
        [
            FaultPlan(kind="raise", match="", times=2),     # retried
            FaultPlan(kind="raise", match="16", times=9),   # terminal
            FaultPlan(kind="exit", match="32", times=9),    # dead worker
        ],
        ids=["retry", "terminal-raise", "terminal-exit"],
    )
    def test_count_parallelism_fault_injection(self, fault):
        starts, sizes = _trace()
        spec = _spec()
        clear_line_stream_cache()
        reference = _reference_states(starts, sizes, spec)
        policy = ExecutorPolicy(
            count_parallelism=2, retries=1, fault=fault
        )
        space = DesignSpaceSimulator(spec, policy=policy)
        space.simulate(starts, sizes)
        assert space.states() == reference
        assert segment_manager().active() == {}

    def test_parallel_then_append_stays_exact(self):
        starts, sizes = _trace()
        spec = _spec()
        clear_line_stream_cache()
        reference = _reference_states(starts, sizes, spec)
        policy = ExecutorPolicy(count_parallelism=2)
        space = DesignSpaceSimulator(spec, policy=policy)
        space.simulate(starts[:2000], sizes[:2000])
        # carried LRU state forces the serial tower path for batch 2
        space.simulate(starts[2000:], sizes[2000:])
        assert space.states() == reference
        assert segment_manager().active() == {}


class TestPolicyValidation:
    def test_count_parallelism_must_be_positive(self):
        from repro.errors import RuntimeExecutionError

        with pytest.raises(RuntimeExecutionError, match="count_parallelism"):
            ExecutorPolicy(count_parallelism=0)
