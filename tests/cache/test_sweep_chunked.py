"""Chunked-trace sweeps: bit-identity, resume, sampling, shipping."""

import numpy as np
import pytest

from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cache.sweep import (
    encode_chunk_state,
    group_state_key,
    sampled_sweep_design_space,
    sweep_design_space,
)
from repro.explore.evalcache import EvaluationCache
from repro.runtime.journal import RunJournal
from repro.trace.chunkstore import write_chunked
from repro.trace.sampling import SamplePlan


CONFIGS = [
    CacheConfig(8, 1, 16),
    CacheConfig(8, 2, 16),
    CacheConfig(16, 1, 16),
    CacheConfig(8, 1, 32),
    CacheConfig(16, 2, 32),
]


def make_trace(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 1 << 14, n, dtype=np.int64)
    sizes = rng.integers(1, 64, n, dtype=np.int64)
    return starts, sizes


@pytest.fixture(scope="module")
def arrays():
    return make_trace()


@pytest.fixture(scope="module")
def exact(arrays):
    return sweep_design_space(CONFIGS, arrays)


class TestBitIdentity:
    def test_serial_chunked_matches_in_memory(self, tmp_path, arrays, exact):
        starts, sizes = arrays
        with write_chunked(
            tmp_path / "t.rct", starts, sizes, chunk_ranges=777
        ) as trace:
            got = sweep_design_space(CONFIGS, trace)
        assert set(got) == set(exact)
        for config in CONFIGS:
            assert got[config].misses == exact[config].misses
            assert got[config].accesses == exact[config].accesses
            assert not got[config].estimated

    def test_parallel_chunked_matches_in_memory(self, tmp_path, arrays, exact):
        starts, sizes = arrays
        journal = RunJournal()
        with write_chunked(
            tmp_path / "t.rct", starts, sizes, chunk_ranges=777
        ) as trace:
            got = sweep_design_space(
                CONFIGS, trace, max_workers=2, journal=journal
            )
        for config in CONFIGS:
            assert got[config].misses == exact[config].misses
        shipping = [
            e for e in journal.events if e["event"] == "trace_shipping"
        ]
        assert shipping and shipping[0]["mode"] == "chunkpath"

    def test_single_chunk_degenerate(self, tmp_path, arrays, exact):
        starts, sizes = arrays
        with write_chunked(tmp_path / "one.rct", starts, sizes) as trace:
            assert trace.n_chunks == 1
            got = sweep_design_space(CONFIGS, trace)
        for config in CONFIGS:
            assert got[config].misses == exact[config].misses


class TestFullStateRoundTrip:
    def test_resumed_simulator_matches_straight_run(self, arrays):
        starts, sizes = arrays
        sets = [8, 16]
        straight = CheetahSimulator(16, sets, 2)
        straight.simulate(starts, sizes)

        half = CheetahSimulator(16, sets, 2)
        half.simulate(starts[:2500], sizes[:2500])
        accesses, families = half.full_state()
        resumed = CheetahSimulator.from_full_state(16, 2, accesses, families)
        resumed.simulate(starts[2500:], sizes[2500:])

        for nsets in sets:
            for assoc in (1, 2):
                assert resumed.misses(nsets, assoc) == straight.misses(
                    nsets, assoc
                )


class TestChunkCheckpointResume:
    def test_sweep_resumes_from_mid_trace_snapshot(self, tmp_path, arrays,
                                                   exact):
        starts, sizes = arrays
        with write_chunked(
            tmp_path / "t.rct", starts, sizes, chunk_ranges=1000
        ) as trace:
            # Seed the cache with a genuine snapshot taken after 2 chunks,
            # as an interrupted sweep would have left it.
            cache = EvaluationCache()
            for line_size in (16, 32):
                group = [c for c in CONFIGS if c.line_size == line_size]
                set_counts = sorted({c.sets for c in group})
                max_assoc = max(c.assoc for c in group)
                sim = CheetahSimulator(line_size, set_counts, max_assoc)
                sim.simulate(starts[:2000], sizes[:2000])
                key = group_state_key(
                    trace.trace_id, line_size, set_counts, max_assoc,
                    prefix="sweepchunk",
                )
                cache.put(key, encode_chunk_state(2, sim.full_state()))
            journal = RunJournal()
            got = sweep_design_space(
                CONFIGS, trace, checkpoint=cache, journal=journal
            )
        for config in CONFIGS:
            assert got[config].misses == exact[config].misses
        resumed = [
            e
            for e in journal.events
            if e["event"] == "pass" and e.get("resumed_at_chunk") == 2
        ]
        assert len(resumed) == 2  # both line-size groups resumed

    def test_second_run_hits_group_checkpoint(self, tmp_path, arrays):
        starts, sizes = arrays
        cache = EvaluationCache()
        with write_chunked(
            tmp_path / "t.rct", starts, sizes, chunk_ranges=1000
        ) as trace:
            first = sweep_design_space(CONFIGS, trace, checkpoint=cache)
            journal = RunJournal()
            second = sweep_design_space(
                CONFIGS, trace, checkpoint=cache, journal=journal
            )
        assert first == second
        passes = [e for e in journal.events if e["event"] == "pass"]
        assert passes == []  # everything came from the checkpoint


class TestSampledSweep:
    def test_error_bound_on_stationary_trace(self, tmp_path, arrays, exact):
        starts, sizes = arrays
        plan = SamplePlan(8, 400, warmup_ranges=100)
        for trace_arg in (
            (starts, sizes),
            write_chunked(tmp_path / "s.rct", starts, sizes,
                          chunk_ranges=600),
        ):
            got = sampled_sweep_design_space(CONFIGS, trace_arg, plan)
            for config in CONFIGS:
                result = got[config]
                assert result.estimated
                assert result.intervals == 8
                assert result.total_ranges == len(starts)
                assert 0 < result.sampled_fraction < 1
                true = exact[config].misses
                if true:
                    rel = abs(result.misses - true) / true
                    assert rel <= 0.10, (config, rel)

    def test_sampled_and_exact_results_are_distinct_types(self, arrays):
        starts, sizes = arrays
        plan = SamplePlan(4, 300)
        sampled = sampled_sweep_design_space(CONFIGS, (starts, sizes), plan)
        exact_one = simulate_trace(CONFIGS[0], starts, sizes)
        assert sampled[CONFIGS[0]].estimated
        assert not exact_one.estimated

    def test_simulate_trace_sampling(self, arrays, exact):
        starts, sizes = arrays
        plan = SamplePlan(8, 400, warmup_ranges=100)
        result = simulate_trace(CONFIGS[0], starts, sizes, sample=plan)
        assert result.estimated
        true = exact[CONFIGS[0]].misses
        assert abs(result.misses - true) / true <= 0.10

    def test_journal_records_sampling(self, arrays):
        starts, sizes = arrays
        journal = RunJournal()
        plan = SamplePlan(4, 300)
        sampled_sweep_design_space(
            CONFIGS, (starts, sizes), plan, journal=journal
        )
        events = [e for e in journal.events if e["event"] == "sampled_pass"]
        assert events
        summary = journal.summary()
        assert summary["sampling"]["passes"] == len(events)
        assert 0 < summary["sampling"]["sampled_ranges"]

    def test_empty_trace(self):
        plan = SamplePlan(4, 300)
        got = sampled_sweep_design_space(CONFIGS, ([], []), plan)
        for config in CONFIGS:
            assert got[config].misses == 0
            assert got[config].intervals == 0
