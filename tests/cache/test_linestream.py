"""Unit tests for repro.cache.linestream (vectorized expansion kernel)."""

import numpy as np
import pytest

from repro.cache.linestream import (
    clear_line_stream_cache,
    collapse_repeats,
    expand_lines,
    line_stream,
)
from repro.errors import TraceError


def reference_expansion(starts, sizes, line_size):
    """The seed simulators' nested range() expansion, kept as oracle."""
    out = []
    for start, size in zip(starts, sizes):
        first = start // line_size
        last = (start + size - 1) // line_size
        out.extend(range(first, last + 1))
    return out


class TestExpandLines:
    def test_matches_range_loop_oracle(self):
        starts = [0, 5, 63, 64, 100, 4, 1000]
        sizes = [1, 60, 2, 64, 7, 4, 129]
        for line_size in (4, 16, 64):
            expected = reference_expansion(starts, sizes, line_size)
            got = expand_lines(starts, sizes, line_size)
            assert got.tolist() == expected

    def test_empty_trace(self):
        assert expand_lines([], [], 16).size == 0

    def test_single_word_ranges(self):
        got = expand_lines([0, 4, 8], [4, 4, 4], 4)
        assert got.tolist() == [0, 1, 2]

    def test_nonpositive_size_rejected(self):
        with pytest.raises(TraceError, match="must be positive"):
            expand_lines([0, 4], [4, 0], 4)

    def test_negative_starts_floor_divide(self):
        # numpy floor division matches Python's for negative addresses.
        starts = [-100, -3]
        sizes = [8, 2]
        expected = reference_expansion(starts, sizes, 16)
        assert expand_lines(starts, sizes, 16).tolist() == expected


class TestCollapseRepeats:
    def test_drops_immediate_repeats_only(self):
        lines = np.array([1, 1, 2, 2, 2, 1, 3, 3, 1])
        assert collapse_repeats(lines).tolist() == [1, 2, 1, 3, 1]

    def test_no_repeats_returns_same_array(self):
        lines = np.array([1, 2, 3])
        assert collapse_repeats(lines) is lines

    def test_short_inputs(self):
        assert collapse_repeats(np.array([], dtype=np.int64)).size == 0
        assert collapse_repeats(np.array([7])).tolist() == [7]


class TestLineStream:
    def test_accesses_count_includes_repeats(self):
        # Two 8-byte ranges over the same 16-byte line: 2 touches, 1 kept.
        stream = line_stream([0, 8], [8, 8], 16, memoize=False)
        assert stream.accesses == 2
        assert stream.lines.tolist() == [0]
        assert stream.repeats == 1

    def test_memoized_by_content_not_identity(self):
        clear_line_stream_cache()
        a = line_stream(np.array([0, 32]), np.array([16, 16]), 16)
        b = line_stream([0, 32], [16, 16], 16)  # distinct objects, same trace
        assert a is b
        c = line_stream([0, 32], [16, 16], 32)  # different line size
        assert c is not a
        clear_line_stream_cache()

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError, match="equal length"):
            line_stream([0, 4], [4], 16)

    def test_narrow_dtype_when_lines_fit(self):
        small = line_stream([0], [4], 4, memoize=False)
        assert small.lines.dtype == np.int32
        huge = line_stream([2**40], [4], 4, memoize=False)
        assert huge.lines.dtype == np.int64
        assert huge.lines.tolist() == [2**38]
