"""Unit tests for repro.cache.linestream (vectorized expansion kernel)."""

import numpy as np
import pytest

from repro.cache.linestream import (
    clear_line_stream_cache,
    collapse_repeats,
    expand_lines,
    line_stream,
)
from repro.errors import TraceError


def reference_expansion(starts, sizes, line_size):
    """The seed simulators' nested range() expansion, kept as oracle."""
    out = []
    for start, size in zip(starts, sizes):
        first = start // line_size
        last = (start + size - 1) // line_size
        out.extend(range(first, last + 1))
    return out


class TestExpandLines:
    def test_matches_range_loop_oracle(self):
        starts = [0, 5, 63, 64, 100, 4, 1000]
        sizes = [1, 60, 2, 64, 7, 4, 129]
        for line_size in (4, 16, 64):
            expected = reference_expansion(starts, sizes, line_size)
            got = expand_lines(starts, sizes, line_size)
            assert got.tolist() == expected

    def test_empty_trace(self):
        assert expand_lines([], [], 16).size == 0

    def test_single_word_ranges(self):
        got = expand_lines([0, 4, 8], [4, 4, 4], 4)
        assert got.tolist() == [0, 1, 2]

    def test_nonpositive_size_rejected(self):
        with pytest.raises(TraceError, match="must be positive"):
            expand_lines([0, 4], [4, 0], 4)

    def test_negative_starts_floor_divide(self):
        # numpy floor division matches Python's for negative addresses.
        starts = [-100, -3]
        sizes = [8, 2]
        expected = reference_expansion(starts, sizes, 16)
        assert expand_lines(starts, sizes, 16).tolist() == expected


class TestCollapseRepeats:
    def test_drops_immediate_repeats_only(self):
        lines = np.array([1, 1, 2, 2, 2, 1, 3, 3, 1])
        assert collapse_repeats(lines).tolist() == [1, 2, 1, 3, 1]

    def test_no_repeats_returns_same_array(self):
        lines = np.array([1, 2, 3])
        assert collapse_repeats(lines) is lines

    def test_short_inputs(self):
        assert collapse_repeats(np.array([], dtype=np.int64)).size == 0
        assert collapse_repeats(np.array([7])).tolist() == [7]


class TestLineStream:
    def test_accesses_count_includes_repeats(self):
        # Two 8-byte ranges over the same 16-byte line: 2 touches, 1 kept.
        stream = line_stream([0, 8], [8, 8], 16, memoize=False)
        assert stream.accesses == 2
        assert stream.lines.tolist() == [0]
        assert stream.repeats == 1

    def test_memoized_by_content_not_identity(self):
        clear_line_stream_cache()
        a = line_stream(np.array([0, 32]), np.array([16, 16]), 16)
        b = line_stream([0, 32], [16, 16], 16)  # distinct objects, same trace
        assert a is b
        c = line_stream([0, 32], [16, 16], 32)  # different line size
        assert c is not a
        clear_line_stream_cache()

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError, match="equal length"):
            line_stream([0, 4], [4], 16)

    def test_narrow_dtype_when_lines_fit(self):
        small = line_stream([0], [4], 4, memoize=False)
        assert small.lines.dtype == np.int32
        huge = line_stream([2**40], [4], 4, memoize=False)
        assert huge.lines.dtype == np.int64
        assert huge.lines.tolist() == [2**38]


class TestCrossLineSizeDerivation:
    """Coarser streams derive from memoized finer ones, bit-identically."""

    def test_derived_stream_matches_direct_expansion(self):
        import hypothesis.strategies as st
        from hypothesis import given, settings

        from repro.cache.linestream import derive_stream

        @settings(max_examples=60, deadline=None)
        @given(
            starts=st.lists(
                st.integers(min_value=0, max_value=1 << 14),
                min_size=1,
                max_size=80,
            ),
            sizes_seed=st.integers(min_value=0, max_value=2**16),
            base=st.sampled_from([4, 8, 16]),
            factor=st.sampled_from([2, 4, 8]),
        )
        def check(starts, sizes_seed, base, factor):
            rng = np.random.default_rng(sizes_seed)
            sizes = rng.integers(1, 96, len(starts)).tolist()
            fine = line_stream(starts, sizes, base, memoize=False)
            derived = derive_stream(
                fine,
                factor,
                np.asarray(starts, dtype=np.int64),
                np.asarray(sizes, dtype=np.int64),
                base * factor,
            )
            direct = line_stream(starts, sizes, base * factor, memoize=False)
            assert derived.lines.tolist() == direct.lines.tolist()
            assert derived.accesses == direct.accesses

        check()

    def test_memo_miss_derives_from_finer_entry(self):
        from repro.cache import linestream as ls_mod

        clear_line_stream_cache()
        starts, sizes = [0, 40, 8, 120], [16, 8, 64, 4]
        fine = line_stream(starts, sizes, 8)
        calls = []
        original = ls_mod.expand_lines

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        ls_mod.expand_lines = counting
        try:
            coarse = line_stream(starts, sizes, 32)  # 8 divides 32 -> derive
        finally:
            ls_mod.expand_lines = original
        assert calls == []  # no re-expansion
        direct = line_stream(starts, sizes, 32, memoize=False)
        assert coarse.lines.tolist() == direct.lines.tolist()
        assert coarse.accesses == direct.accesses
        clear_line_stream_cache()

    def test_line_access_count_closed_form(self):
        from repro.cache.linestream import expand_lines, line_access_count

        starts = np.array([0, 7, 100, 3], dtype=np.int64)
        sizes = np.array([1, 20, 64, 5], dtype=np.int64)
        for line_size in (4, 16, 64):
            assert line_access_count(starts, sizes, line_size) == len(
                expand_lines(starts, sizes, line_size)
            )
        assert line_access_count(starts[:0], sizes[:0], 16) == 0


class TestBoundedMemoCache:
    """The memo cache holds a bounded byte budget, evicting LRU-first."""

    def setup_method(self):
        clear_line_stream_cache()

    def teardown_method(self):
        from repro.cache.linestream import (
            _DEFAULT_CACHE_BYTES,
            set_line_stream_cache_budget,
        )

        clear_line_stream_cache()
        set_line_stream_cache_budget(_DEFAULT_CACHE_BYTES)

    def _fill(self, n, ranges=200):
        streams = []
        for i in range(n):
            starts = list(range(i * 10_000, i * 10_000 + ranges * 8, 8))
            streams.append(line_stream(starts, [4] * ranges, 4))
        return streams

    def test_stats_track_hits_misses(self):
        from repro.cache.linestream import line_stream_cache_stats

        self._fill(2)
        line_stream(list(range(0, 1600, 8)), [4] * 200, 4)  # re-hit entry 0
        stats = line_stream_cache_stats()
        assert stats["misses"] >= 2
        assert stats["hits"] >= 1
        assert stats["resident_entries"] == 2
        assert stats["resident_bytes"] > 0
        assert stats["resident_bytes"] <= stats["budget_bytes"]

    def test_byte_budget_evicts_lru(self):
        from repro.cache.linestream import (
            line_stream_cache_stats,
            set_line_stream_cache_budget,
        )

        per_entry = self._fill(1)[0].lines.nbytes
        clear_line_stream_cache()
        budget = 3 * per_entry  # room for exactly three entries
        set_line_stream_cache_budget(budget)
        self._fill(6)
        stats = line_stream_cache_stats()
        assert stats["evictions"] >= 3
        assert stats["evicted_bytes"] > 0
        assert stats["resident_bytes"] <= budget
        # Most-recent entries survive: re-requesting the last stream is
        # a hit, re-requesting the first (evicted) one is a miss.
        before = line_stream_cache_stats()
        i = 5
        line_stream(
            list(range(i * 10_000, i * 10_000 + 200 * 8, 8)), [4] * 200, 4
        )
        line_stream(list(range(0, 200 * 8, 8)), [4] * 200, 4)
        after = line_stream_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"] + 1

    def test_zero_budget_caches_nothing(self):
        from repro.cache.linestream import (
            line_stream_cache_stats,
            set_line_stream_cache_budget,
        )

        set_line_stream_cache_budget(0)
        self._fill(3)
        assert line_stream_cache_stats()["resident_entries"] == 0

    def test_negative_budget_rejected(self):
        from repro.cache.linestream import set_line_stream_cache_budget

        with pytest.raises(TraceError, match="budget"):
            set_line_stream_cache_budget(-1)

    def test_budget_setter_returns_previous(self):
        from repro.cache.linestream import set_line_stream_cache_budget

        prev = set_line_stream_cache_budget(1024)
        assert set_line_stream_cache_budget(prev) == 1024

    def test_eviction_journaled(self):
        from repro.cache.linestream import set_line_stream_cache_budget
        from repro.runtime.journal import RunJournal, use_journal

        per_entry = self._fill(1)[0].lines.nbytes
        clear_line_stream_cache()
        set_line_stream_cache_budget(per_entry)  # one entry's worth
        journal = RunJournal()
        with use_journal(journal):
            self._fill(3)
        events = [
            e for e in journal.events if e["event"] == "linestream_evict"
        ]
        assert events
        summary = journal.summary()
        assert summary["memory"]["linestream_evictions"] >= 1
