"""Unit tests for repro.cache.inclusion."""

from repro.cache.config import CacheConfig
from repro.cache.inclusion import check_hierarchy, satisfies_inclusion


class TestInclusion:
    def test_paper_small_hierarchy_is_legal(self):
        icache = CacheConfig.from_size(1024, 1, 32)
        dcache = CacheConfig.from_size(1024, 1, 32)
        unified = CacheConfig.from_size(16 * 1024, 2, 64)
        assert satisfies_inclusion(icache, unified)
        assert check_hierarchy(icache, dcache, unified) == []

    def test_paper_large_hierarchy_is_legal(self):
        l1 = CacheConfig.from_size(16 * 1024, 2, 32)
        unified = CacheConfig.from_size(128 * 1024, 4, 64)
        assert satisfies_inclusion(l1, unified)

    def test_smaller_l2_line_violates(self):
        l1 = CacheConfig.from_size(1024, 1, 64)
        l2 = CacheConfig.from_size(16 * 1024, 2, 32)
        assert not satisfies_inclusion(l1, l2)

    def test_smaller_l2_capacity_violates(self):
        l1 = CacheConfig.from_size(16 * 1024, 2, 32)
        l2 = CacheConfig.from_size(8 * 1024, 2, 64)
        assert not satisfies_inclusion(l1, l2)

    def test_aliasing_needs_associativity(self):
        # L1 spans 8KB of address reach; L2 direct-mapped spanning 8KB of
        # sets cannot hold 2-way L1 sets that alias.
        l1 = CacheConfig(256, 2, 32)  # span 8KB, 16KB total
        l2_weak = CacheConfig(256, 1, 64)  # span 16KB, 1-way
        l2_ok = CacheConfig(256, 2, 64)
        assert not satisfies_inclusion(l1, l2_weak)
        assert satisfies_inclusion(l1, l2_ok)

    def test_check_hierarchy_reports_each_violation(self):
        icache = CacheConfig.from_size(16 * 1024, 2, 32)
        dcache = CacheConfig.from_size(16 * 1024, 2, 32)
        unified = CacheConfig.from_size(8 * 1024, 1, 32)
        problems = check_hierarchy(icache, dcache, unified)
        assert len(problems) == 2
        assert "instruction" in problems[0]
        assert "data" in problems[1]
