"""Sweep fault tolerance: retries, fallback, partial results, checkpoints."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.sweep import sweep_design_space
from repro.errors import ConfigurationError, RuntimeExecutionError
from repro.explore.evalcache import EvaluationCache
from repro.runtime import ExecutorPolicy, FaultPlan, RunJournal
from repro.runtime.executor import shm_available

CONFIGS = [
    CacheConfig(8, 1, 16),
    CacheConfig(8, 2, 16),
    CacheConfig(16, 1, 16),
    CacheConfig(8, 1, 32),
    CacheConfig(4, 4, 32),
    CacheConfig(16, 2, 64),
]


def trace():
    starts = [0, 32, 64, 0, 128, 256, 32, 512, 0, 96, 72, 8]
    sizes = [16, 16, 32, 16, 64, 16, 16, 16, 16, 4, 4, 40]
    return starts, sizes


BASELINE = sweep_design_space(CONFIGS, trace())


class TestFaultInjection:
    def test_worker_raise_mid_sweep_is_retried(self):
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=2,
            backoff=0.0,
            fault=FaultPlan("raise", match="32", times=1),
        )
        results = sweep_design_space(
            CONFIGS, trace, policy=policy, journal=journal
        )
        assert results == BASELINE
        retries = journal.select("retry")
        assert len(retries) == 1
        assert retries[0]["key"] == "32"

    def test_worker_death_falls_back_and_matches(self):
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=2,
            backoff=0.0,
            fault=FaultPlan("exit", match="16", times=1),
        )
        results = sweep_design_space(
            CONFIGS, trace, policy=policy, journal=journal
        )
        assert results == BASELINE
        assert journal.select("fallback")

    def test_group_failure_fails_only_its_configs(self):
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=1,
            backoff=0.0,
            fault=FaultPlan("raise", match="64", times=99),
        )
        results = sweep_design_space(
            CONFIGS,
            trace,
            policy=policy,
            journal=journal,
            on_error="partial",
        )
        survivors = {c for c in CONFIGS if c.line_size != 64}
        assert set(results) == survivors
        for config in survivors:
            assert results[config] == BASELINE[config]
        (failed,) = journal.select("group_failed")
        assert failed["line_size"] == 64
        assert failed["configs"] == 1

    def test_group_failure_raises_by_default(self):
        policy = ExecutorPolicy(
            max_workers=2,
            retries=0,
            backoff=0.0,
            serial_fallback=True,
            fault=FaultPlan("raise", match="64", times=99),
        )
        with pytest.raises(RuntimeExecutionError, match="line 64"):
            sweep_design_space(CONFIGS, trace, policy=policy)

    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError, match="on_error"):
            sweep_design_space(CONFIGS, trace(), on_error="ignore")

    def test_serial_fault_injection_also_works(self):
        # No workers: injected faults degrade to in-process raises, so the
        # retry budget still gets exercised without a pool.
        journal = RunJournal()
        policy = ExecutorPolicy(
            retries=2,
            backoff=0.0,
            fault=FaultPlan("raise", match="32", times=1),
        )
        results = sweep_design_space(
            CONFIGS, trace, policy=policy, journal=journal
        )
        assert results == BASELINE
        assert len(journal.select("retry")) == 1


class TestCheckpointResume:
    def test_second_run_simulates_nothing(self):
        cache = EvaluationCache()
        journal = RunJournal()
        first = sweep_design_space(
            CONFIGS, trace(), checkpoint=cache, journal=journal
        )
        assert first == BASELINE
        stores = journal.select("checkpoint")
        assert sum(e["action"] == "store" for e in stores) == 3

        rerun_journal = RunJournal()
        second = sweep_design_space(
            CONFIGS, trace(), checkpoint=cache, journal=rerun_journal
        )
        assert second == BASELINE
        assert not rerun_journal.select("pass")  # zero simulation passes
        hits = rerun_journal.select("checkpoint")
        assert all(e["action"] == "hit" for e in hits)
        assert len(hits) == 3

    def test_kill_and_resume(self, tmp_path):
        """A run killed mid-sweep resumes from its completed groups."""
        path = tmp_path / "checkpoint.json"
        cache = EvaluationCache(path)
        policy = ExecutorPolicy(
            retries=0, fault=FaultPlan("raise", match="64", times=99)
        )
        # First run dies on the line-64 group ("kill"): earlier groups
        # were checkpointed durably before the failure.
        with pytest.raises(RuntimeExecutionError):
            sweep_design_space(
                CONFIGS, trace(), policy=policy, checkpoint=cache
            )
        assert len(EvaluationCache(path)) == 2  # groups 16 and 32 survived

        # Resume with a fresh process (fresh cache object from disk) and
        # no fault: only the missing group simulates.
        resumed_cache = EvaluationCache(path)
        journal = RunJournal()
        results = sweep_design_space(
            CONFIGS, trace(), checkpoint=resumed_cache, journal=journal
        )
        assert results == BASELINE
        passes = journal.select("pass")
        assert len(passes) == 1
        assert passes[0]["line_size"] == 64

    def test_trace_key_avoids_digest(self):
        calls = []

        def factory():
            calls.append(1)
            return trace()

        cache = EvaluationCache()
        first = sweep_design_space(
            CONFIGS, factory, checkpoint=cache, trace_key="tiny-trace"
        )
        materialized_first = len(calls)
        second = sweep_design_space(
            CONFIGS, factory, checkpoint=cache, trace_key="tiny-trace"
        )
        assert first == second == BASELINE
        # The fully-warm rerun never needed the trace at all.
        assert len(calls) == materialized_first

    def test_checkpoints_are_parallel_serial_compatible(self):
        cache = EvaluationCache()
        first = sweep_design_space(
            CONFIGS, trace(), max_workers=2, checkpoint=cache
        )
        journal = RunJournal()
        second = sweep_design_space(
            CONFIGS, trace(), checkpoint=cache, journal=journal
        )
        assert first == second == BASELINE
        assert not journal.select("pass")

    def test_distinct_traces_do_not_collide(self):
        cache = EvaluationCache()
        sweep_design_space(CONFIGS, trace(), checkpoint=cache)

        starts, sizes = trace()
        other = (starts, [s * 2 for s in sizes])
        journal = RunJournal()
        sweep_design_space(CONFIGS, other, checkpoint=cache, journal=journal)
        # Different trace, different digest: no checkpoint hits, all three
        # groups re-simulated, stored under their own keys.
        assert len(journal.select("pass")) == 3
        assert len(cache) == 6  # 3 groups per trace


class TestTraceResidency:
    def test_unpicklable_factory_materialized_once_into_shm(self):
        """An unpicklable factory runs once; workers map shared memory."""
        calls = []

        def factory():
            calls.append(1)
            return trace()

        results = sweep_design_space(CONFIGS, factory, max_workers=2)
        assert results == BASELINE
        assert len(calls) == (1 if shm_available() else 3)

    def test_factory_called_per_group_with_pickle_shipping(self):
        """Legacy pickling materializes per submission, not all upfront."""
        calls = []

        def factory():
            calls.append(1)
            return trace()

        policy = ExecutorPolicy(max_workers=2, trace_shipping="pickle")
        results = sweep_design_space(CONFIGS, factory, policy=policy)
        assert results == BASELINE
        assert len(calls) == 3  # closure is unpicklable -> parent, per group

    def test_picklable_factory_ships_to_workers(self):
        results = sweep_design_space(CONFIGS, trace, max_workers=2)
        assert results == BASELINE

    def test_journal_shows_late_materialization(self):
        journal = RunJournal()

        def factory():
            return trace()

        policy = ExecutorPolicy(max_workers=2, trace_shipping="pickle")
        sweep_design_space(CONFIGS, factory, policy=policy, journal=journal)
        events = journal.select("trace_materialized")
        assert len(events) == 3
        assert {e["line_size"] for e in events} == {16, 32, 64}
        jobs = journal.select("job")
        assert len(jobs) == 3

    def test_journal_shows_shm_shipping(self):
        if not shm_available():
            pytest.skip("POSIX shared memory unavailable")
        journal = RunJournal()

        def factory():
            return trace()

        sweep_design_space(CONFIGS, factory, max_workers=2, journal=journal)
        events = journal.select("trace_materialized")
        assert len(events) == 1 and events[0]["line_size"] == "all"
        shipping = journal.select("trace_shipping")
        assert shipping and shipping[0]["mode"] == "shm"
        attaches = journal.select("shm_attach")
        assert len(attaches) == 3
        assert all(
            e["bytes_mapped"] > e["bytes_shipped"] > 0 for e in attaches
        )
