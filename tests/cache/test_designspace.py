"""DesignSpaceSimulator vs independent per-line-size passes.

The whole-design-space kernel shares one expansion and one value sort
across every line size in a derivation tower; these tests pin that its
miss counts are *bit-identical* to independent
:class:`~repro.cache.cheetah.CheetahSimulator` passes — across random
traces, line-size ladders (including gaps that force a fresh sort),
engines, incremental feeding and checkpoint round-trips.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.designspace import (
    MAX_DERIVE_FACTOR,
    DesignSpaceSimulator,
    _build_towers,
)
from repro.cache.linestream import clear_line_stream_cache
from repro.cache.sweep import sweep_design_space
from repro.errors import ConfigurationError
from repro.explore.evalcache import EvaluationCache

ALL_LINE_SIZES = [4, 8, 16, 32, 64, 128, 256]


@st.composite
def range_traces(draw, max_len=150):
    n = draw(st.integers(min_value=1, max_value=max_len))
    starts = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 14),
            min_size=n,
            max_size=n,
        )
    )
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=96), min_size=n, max_size=n
        )
    )
    return np.asarray(starts, dtype=np.int64), np.asarray(
        sizes, dtype=np.int64
    )


@st.composite
def ladders(draw):
    """A random subset of line sizes (1..5 of them, any gap pattern)."""
    sizes = draw(
        st.lists(
            st.sampled_from(ALL_LINE_SIZES),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    return sorted(sizes)


def per_line_oracle(ladder, spec, starts, sizes, engine="auto"):
    sims = {}
    for line_size in ladder:
        set_counts, max_assoc = spec[line_size]
        clear_line_stream_cache()  # no sharing with the kernel under test
        sim = CheetahSimulator(
            line_size, set_counts, max_assoc, engine=engine
        )
        sim.simulate(starts, sizes)
        sims[line_size] = sim
    clear_line_stream_cache()
    return sims


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        trace=range_traces(),
        ladder=ladders(),
        engine=st.sampled_from(["auto", "kernel", "scalar"]),
        mode=st.sampled_from(["auto", "links", "streams"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_misses_identical_to_per_line_size_passes(
        self, trace, ladder, engine, mode, seed
    ):
        starts, sizes = trace
        rng = np.random.default_rng(seed)
        spec = {
            line_size: (
                sorted(
                    {int(s) for s in rng.choice([4, 8, 16, 64, 256], size=3)}
                ),
                int(rng.integers(1, 9)),
            )
            for line_size in ladder
        }
        clear_line_stream_cache()
        space = DesignSpaceSimulator(spec, engine=engine, mode=mode)
        space.simulate(starts, sizes)
        oracle = per_line_oracle(ladder, spec, starts, sizes, engine=engine)
        for line_size in ladder:
            set_counts, max_assoc = spec[line_size]
            for sets in set_counts:
                for assoc in range(1, max_assoc + 1):
                    assert space.misses(line_size, sets, assoc) == oracle[
                        line_size
                    ].misses(sets, assoc), (line_size, sets, assoc)

    @settings(max_examples=15, deadline=None)
    @given(trace=range_traces(max_len=80), ladder=ladders())
    def test_incremental_feeding_matches_single_batch(self, trace, ladder):
        starts, sizes = trace
        spec = {line_size: ([8, 64], 4) for line_size in ladder}
        clear_line_stream_cache()
        whole = DesignSpaceSimulator(spec)
        whole.simulate(starts, sizes)
        clear_line_stream_cache()
        split = DesignSpaceSimulator(spec)
        cut = len(starts) // 2
        split.simulate(starts[:cut], sizes[:cut])
        # Second batch hits the carrying-state streams path.
        split.simulate(starts[cut:], sizes[cut:])
        clear_line_stream_cache()
        for line_size in ladder:
            for sets in (8, 64):
                for assoc in (1, 2, 4):
                    assert whole.misses(line_size, sets, assoc) == (
                        split.misses(line_size, sets, assoc)
                    )

    def test_empty_trace_is_a_noop(self):
        space = DesignSpaceSimulator({16: ([8], 2), 32: ([8], 2)})
        space.simulate([], [])
        assert space.misses(16, 8, 1) == 0
        assert space.misses(32, 8, 2) == 0


class TestTowers:
    def test_contiguous_ladder_is_one_tower(self):
        space = DesignSpaceSimulator(
            {ls: ([8], 2) for ls in (16, 32, 64, 128)}
        )
        assert space.towers == [[16, 32, 64, 128]]

    def test_wide_gap_starts_a_fresh_tower(self):
        # 4 -> 64 is a factor-16 jump: deriving would cost four splits,
        # a fresh (smaller) sort costs about two.
        space = DesignSpaceSimulator({ls: ([8], 2) for ls in (4, 64, 128)})
        assert space.towers == [[4], [64, 128]]

    def test_max_derive_factor_gap_stays_in_tower(self):
        space = DesignSpaceSimulator({ls: ([8], 2) for ls in (16, 64)})
        assert 64 // 16 == MAX_DERIVE_FACTOR
        assert space.towers == [[16, 64]]

    def test_build_towers_unit(self):
        assert _build_towers([4, 8, 32, 128, 512]) == [
            [4, 8, 32, 128, 512]
        ]
        assert _build_towers([4, 64]) == [[4], [64]]
        assert _build_towers([8]) == [[8]]

    def test_gap_results_still_identical(self):
        rng = np.random.default_rng(3)
        starts = rng.integers(0, 1 << 13, 500)
        sizes = rng.integers(1, 80, 500)
        ladder = [4, 64, 256]  # two towers
        spec = {ls: ([16, 128], 4) for ls in ladder}
        clear_line_stream_cache()
        space = DesignSpaceSimulator(spec)
        space.simulate(starts, sizes)
        assert len(space.towers) == 2
        oracle = per_line_oracle(ladder, spec, starts, sizes)
        for line_size in ladder:
            for sets in (16, 128):
                for assoc in (1, 4):
                    assert space.misses(line_size, sets, assoc) == oracle[
                        line_size
                    ].misses(sets, assoc)


class TestModes:
    """The per-tower plan is a measured choice, never a semantic one."""

    def trace(self):
        rng = np.random.default_rng(7)
        return (
            rng.integers(0, 1 << 13, 600),
            rng.integers(1, 64, 600),
        )

    def test_forced_modes_bit_identical(self):
        starts, sizes = self.trace()
        spec = {ls: ([8, 64], 4) for ls in (16, 32, 64)}
        results = {}
        for mode in ("links", "streams"):
            clear_line_stream_cache()
            space = DesignSpaceSimulator(spec, engine="kernel", mode=mode)
            space.simulate(starts, sizes)
            results[mode] = {
                (ls, sets, assoc): space.misses(ls, sets, assoc)
                for ls in spec
                for sets in (8, 64)
                for assoc in (1, 2, 4)
            }
        assert results["links"] == results["streams"]

    def test_auto_mode_is_journaled(self):
        from repro.runtime.journal import RunJournal, use_journal

        starts, sizes = self.trace()
        spec = {ls: ([8], 2) for ls in (16, 32, 64)}
        journal = RunJournal()
        clear_line_stream_cache()
        with use_journal(journal):
            space = DesignSpaceSimulator(spec, engine="kernel")
            space.simulate(starts, sizes)
        events = journal.select("designspace")
        assert len(events) == 1
        # auto mode fuses the tower's counting into one dispatch
        assert events[0]["mode"] in ("fused-links", "fused-streams")
        fused = journal.select("stackdist_fused")
        assert len(fused) == 1
        assert fused[0]["problems"] == 3

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            DesignSpaceSimulator({16: ([8], 2)}, mode="telepathy")


class TestStateAndConfigs:
    def test_from_configs_groups_like_a_sweep(self):
        configs = [
            CacheConfig(8, 1, 16),
            CacheConfig(16, 2, 16),
            CacheConfig(8, 4, 32),
        ]
        space = DesignSpaceSimulator.from_configs(configs)
        assert space.line_sizes == [16, 32]
        space.simulate([0, 40, 8], [16, 8, 64])
        results = space.results()
        for config in configs:
            assert space.result(config) == results[config]

    def test_states_round_trip(self):
        rng = np.random.default_rng(11)
        starts = rng.integers(0, 4096, 300)
        sizes = rng.integers(1, 64, 300)
        spec = {16: ([8, 32], 4), 32: ([8, 32], 4)}
        space = DesignSpaceSimulator(spec)
        space.simulate(starts, sizes)
        rebuilt = DesignSpaceSimulator.from_states(space.states())
        for line_size in (16, 32):
            for sets in (8, 32):
                for assoc in (1, 2, 4):
                    assert rebuilt.misses(line_size, sets, assoc) == (
                        space.misses(line_size, sets, assoc)
                    )

    def test_untracked_line_size_rejected(self):
        space = DesignSpaceSimulator({16: ([8], 2)})
        with pytest.raises(ConfigurationError, match="not tracked"):
            space.misses(32, 8, 1)

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            DesignSpaceSimulator({})
        with pytest.raises(ConfigurationError, match="empty"):
            DesignSpaceSimulator.from_states({})


class TestSweepInterop:
    """Checkpoints written by either strategy resume under the other."""

    def trace(self):
        rng = np.random.default_rng(5)
        return (
            rng.integers(0, 1 << 12, 400),
            rng.integers(1, 48, 400),
        )

    def configs(self):
        return [
            CacheConfig(sets, assoc, line_size)
            for line_size in (16, 32, 64)
            for sets in (8, 64)
            for assoc in (1, 2)
        ]

    def test_strategies_bit_identical(self):
        configs, trace = self.configs(), self.trace()
        clear_line_stream_cache()
        ds = sweep_design_space(configs, trace, strategy="designspace")
        clear_line_stream_cache()
        perline = sweep_design_space(configs, trace, strategy="perline")
        assert ds == perline

    def test_checkpoint_round_trip_across_strategies(self, tmp_path):
        configs, trace = self.configs(), self.trace()
        cache = EvaluationCache(tmp_path / "ck.json")
        first = sweep_design_space(
            configs, trace, checkpoint=cache, strategy="designspace"
        )
        # Resume from the same store with the per-line-size oracle: all
        # groups adopted, zero re-simulation, identical results.
        resumed = EvaluationCache(tmp_path / "ck.json")
        second = sweep_design_space(
            configs, trace, checkpoint=resumed, strategy="perline"
        )
        assert first == second
        assert resumed.hits > 0 and resumed.misses == 0

    def test_bad_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            sweep_design_space(self.configs(), self.trace(), strategy="bogus")
