"""Property-based tests for write-policy simulation (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cache.writepolicy import simulate_write_policy
from repro.trace.ranges import KIND_DATA, KIND_INSTR, KIND_WRITE, RangeTrace


@st.composite
def tagged_traces(draw, max_len=150):
    n = draw(st.integers(min_value=1, max_value=max_len))
    starts = draw(
        st.lists(
            st.integers(min_value=0, max_value=1024).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=8).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    kinds = draw(
        st.lists(
            st.sampled_from([KIND_INSTR, KIND_DATA, KIND_WRITE]),
            min_size=n,
            max_size=n,
        )
    )
    return RangeTrace.build(starts, sizes, kinds)


configs = st.builds(
    CacheConfig,
    sets=st.sampled_from([1, 4, 16]),
    assoc=st.integers(min_value=1, max_value=4),
    line_size=st.sampled_from([8, 16, 32]),
)


@given(trace=tagged_traces(), config=configs)
@settings(max_examples=60, deadline=None)
def test_writeback_misses_equal_oblivious(trace, config):
    """Write-back + write-allocate changes no placement decision, so the
    miss count equals the write-oblivious simulator's exactly."""
    with_writes = simulate_write_policy(config, trace, "write-back")
    oblivious = simulate_trace(config, trace.starts, trace.sizes)
    assert with_writes.misses == oblivious.misses
    assert with_writes.accesses == oblivious.accesses


@given(trace=tagged_traces(), config=configs)
@settings(max_examples=60, deadline=None)
def test_writeback_bounds(trace, config):
    result = simulate_write_policy(
        config, trace, "write-back", flush_at_end=True
    )
    write_accesses = trace.write_component.line_accesses(config.line_size)
    # Every writeback needs a distinct dirtying event.
    assert 0 <= result.writebacks <= write_accesses
    assert result.memory_writes == 0


@given(trace=tagged_traces(), config=configs)
@settings(max_examples=60, deadline=None)
def test_writethrough_bounds(trace, config):
    result = simulate_write_policy(config, trace, "write-through")
    write_accesses = trace.write_component.line_accesses(config.line_size)
    read_accesses = result.accesses - write_accesses
    # Every store line-access writes memory, exactly once each.
    assert result.memory_writes == write_accesses
    assert result.writebacks == 0
    assert 0 <= result.misses <= result.accesses
    # Note: no-write-allocate misses can be *either* side of
    # write-allocate's — skipping the fill loses store-line reuse but
    # also avoids evicting useful lines — so no ordering is asserted.
    # Reads alone can at most miss once per read access.
    read_misses_upper = read_accesses + write_accesses  # all can miss
    assert result.misses <= read_misses_upper


@given(trace=tagged_traces(), config=configs)
@settings(max_examples=40, deadline=None)
def test_flush_only_adds_writebacks(trace, config):
    plain = simulate_write_policy(config, trace, "write-back")
    flushed = simulate_write_policy(
        config, trace, "write-back", flush_at_end=True
    )
    assert flushed.writebacks >= plain.writebacks
    assert flushed.misses == plain.misses
