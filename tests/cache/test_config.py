"""Unit tests for repro.cache.config."""

import pytest

from repro.cache.config import WORD_BYTES, CacheConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_valid_config(self):
        config = CacheConfig(32, 1, 32)
        assert config.size_bytes == 1024

    @pytest.mark.parametrize("sets", [0, 3, 12, -8])
    def test_bad_set_counts(self, sets):
        with pytest.raises(ConfigurationError, match="sets"):
            CacheConfig(sets, 1, 32)

    def test_bad_assoc(self):
        with pytest.raises(ConfigurationError, match="assoc"):
            CacheConfig(32, 0, 32)

    @pytest.mark.parametrize("line", [0, 2, 3, 24])
    def test_bad_line_sizes(self, line):
        with pytest.raises(ConfigurationError, match="line_size"):
            CacheConfig(32, 1, line)

    def test_bad_ports(self):
        with pytest.raises(ConfigurationError, match="ports"):
            CacheConfig(32, 1, 32, ports=0)

    def test_minimum_line_is_one_word(self):
        assert CacheConfig(4, 1, WORD_BYTES).line_size == WORD_BYTES


class TestGeometry:
    def test_from_size_matches_paper_configs(self):
        # 16KB 2-way with 64-byte lines -> 128 sets.
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        assert config.sets == 128
        assert config.size_kb == 16.0

    def test_from_size_indivisible_rejected(self):
        with pytest.raises(ConfigurationError, match="divisible"):
            CacheConfig.from_size(1000, 1, 32)

    def test_line_and_set_mapping(self):
        config = CacheConfig(8, 2, 16)
        assert config.line_of(0) == 0
        assert config.line_of(15) == 0
        assert config.line_of(16) == 1
        assert config.set_of_line(9) == 1
        assert config.set_of_line(8) == 0

    def test_with_line_size(self):
        config = CacheConfig(64, 2, 32, ports=2)
        contracted = config.with_line_size(16)
        assert contracted.sets == 64
        assert contracted.assoc == 2
        assert contracted.line_size == 16
        assert contracted.ports == 2

    def test_describe(self):
        assert "direct-mapped" in CacheConfig(32, 1, 32).describe()
        assert "2-way" in CacheConfig.from_size(16 * 1024, 2, 32).describe()
        assert "16KB" in CacheConfig.from_size(16 * 1024, 2, 32).describe()

    def test_ordering_and_hashing(self):
        a = CacheConfig(32, 1, 32)
        b = CacheConfig(64, 1, 32)
        assert a < b
        assert len({a, b, CacheConfig(32, 1, 32)}) == 2
