"""Property tests: the vectorized engine against two independent oracles.

On random range traces, the vectorized :class:`CheetahSimulator` must
produce miss counts identical to

* the direct :class:`CacheSimulator` (stateful, per-access, untouched by
  the vectorization work), and
* the preserved seed stack-family path
  (:class:`repro.cache._legacy.LegacyCheetahSimulator`),

for every (sets, assoc, line_size) in a sampled grid — including under
incremental trace feeding, which exercises the engine's cross-batch
stack-state handoff.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache._legacy import LegacyCheetahSimulator
from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator

line_sizes = st.sampled_from([4, 8, 16, 32, 64])
assoc_grid = (1, 2, 3, 4)


@st.composite
def range_traces(draw, max_len=120):
    n = draw(st.integers(min_value=1, max_value=max_len))
    starts = draw(
        st.lists(
            st.integers(min_value=0, max_value=1024).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=40).map(lambda v: v * 4),
            min_size=n,
            max_size=n,
        )
    )
    return starts, sizes


@st.composite
def set_count_grids(draw):
    return draw(
        st.lists(
            st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )


@given(trace=range_traces(), set_counts=set_count_grids(), line=line_sizes)
@settings(max_examples=60, deadline=None)
def test_vectorized_engine_matches_both_oracles(trace, set_counts, line):
    starts, sizes = trace
    vec = CheetahSimulator(line, set_counts, max_assoc=4)
    vec.simulate(starts, sizes)
    legacy = LegacyCheetahSimulator(line, set_counts, max_assoc=4)
    legacy.simulate(starts, sizes)
    for sets in set_counts:
        for assoc in assoc_grid:
            direct = CacheSimulator(CacheConfig(sets, assoc, line))
            for start, size in zip(starts, sizes):
                direct.access_range(start, size)
            assert (
                vec.misses(sets, assoc)
                == legacy.misses(sets, assoc)
                == direct.misses
            ), (sets, assoc, line)
            assert vec.accesses == legacy.accesses == direct.accesses


@given(
    trace=range_traces(),
    set_counts=set_count_grids(),
    line=line_sizes,
    cut_frac=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_incremental_feeding_matches_legacy(trace, set_counts, line, cut_frac):
    """Batch boundaries must not change stack state or histograms."""
    starts, sizes = trace
    cut = int(len(starts) * cut_frac)
    vec = CheetahSimulator(line, set_counts, max_assoc=4)
    vec.simulate(starts[:cut], sizes[:cut])
    vec.simulate(starts[cut:], sizes[cut:])
    legacy = LegacyCheetahSimulator(line, set_counts, max_assoc=4)
    legacy.simulate(starts, sizes)
    for sets in set_counts:
        for assoc in assoc_grid:
            assert vec.misses(sets, assoc) == legacy.misses(sets, assoc)


@given(trace=range_traces(max_len=60), line=line_sizes)
@settings(max_examples=30, deadline=None)
def test_scalar_access_line_interleaves_with_batches(trace, line):
    """Mixing access_line() and simulate() stays consistent with legacy."""
    starts, sizes = trace
    vec = CheetahSimulator(line, [8], max_assoc=4)
    legacy = LegacyCheetahSimulator(line, [8], max_assoc=4)
    cut = len(starts) // 2
    vec.simulate(starts[:cut], sizes[:cut])
    legacy.simulate(starts[:cut], sizes[:cut])
    for extra_line in (0, 1, 9, 1, 0):
        vec.access_line(extra_line)
        for fam in legacy._families:
            from repro.cache._legacy import _touch

            _touch(fam, extra_line)
        legacy.accesses += 1
    vec.simulate(starts[cut:], sizes[cut:])
    legacy.simulate(starts[cut:], sizes[cut:])
    for assoc in assoc_grid:
        assert vec.misses(8, assoc) == legacy.misses(8, assoc)
