"""Unit tests for repro.cache.simulator (the direct LRU simulator)."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import CacheSimulator, simulate_trace
from repro.errors import TraceError


class TestAccessLine:
    def test_cold_miss_then_hit(self):
        sim = CacheSimulator(CacheConfig(4, 1, 16))
        assert sim.access_line(0) is False
        assert sim.access_line(0) is True
        assert sim.misses == 1
        assert sim.accesses == 2

    def test_direct_mapped_conflict(self):
        sim = CacheSimulator(CacheConfig(4, 1, 16))
        sim.access_line(0)
        sim.access_line(4)  # same set (4 % 4 == 0), evicts line 0
        assert sim.access_line(0) is False
        assert sim.misses == 3

    def test_two_way_avoids_that_conflict(self):
        sim = CacheSimulator(CacheConfig(4, 2, 16))
        sim.access_line(0)
        sim.access_line(4)
        assert sim.access_line(0) is True
        assert sim.misses == 2

    def test_lru_replacement_order(self):
        # One set, 2 ways: touch 0, 1, re-touch 0, then 2 evicts 1 not 0.
        sim = CacheSimulator(CacheConfig(1, 2, 16))
        sim.access_line(0)
        sim.access_line(1)
        sim.access_line(0)
        sim.access_line(2)
        assert sim.contains_line(0)
        assert not sim.contains_line(1)
        assert sim.contains_line(2)

    def test_resident_lines(self):
        sim = CacheSimulator(CacheConfig(2, 1, 16))
        sim.access_line(0)
        sim.access_line(1)
        assert sim.resident_lines() == {0, 1}

    def test_reset(self):
        sim = CacheSimulator(CacheConfig(2, 1, 16))
        sim.access_line(0)
        sim.reset()
        assert sim.accesses == 0
        assert sim.misses == 0
        assert not sim.contains_line(0)


class TestAccessRange:
    def test_range_touches_each_overlapping_line_once(self):
        sim = CacheSimulator(CacheConfig(16, 1, 16))
        # Bytes [8, 40) overlap lines 0, 1, 2.
        misses = sim.access_range(8, 32)
        assert misses == 3
        assert sim.accesses == 3

    def test_range_within_one_line(self):
        sim = CacheSimulator(CacheConfig(16, 1, 16))
        assert sim.access_range(4, 4) == 1
        assert sim.access_range(8, 4) == 0  # same line

    def test_non_positive_size_rejected(self):
        sim = CacheSimulator(CacheConfig(16, 1, 16))
        with pytest.raises(TraceError, match="positive"):
            sim.access_range(0, 0)


class TestSimulateTrace:
    def test_matches_stateful_simulator(self):
        config = CacheConfig(8, 2, 32)
        starts = [0, 64, 128, 0, 32, 64, 1024, 2048, 0]
        sizes = [32, 64, 32, 96, 32, 32, 256, 32, 32]
        stateful = CacheSimulator(config)
        for start, size in zip(starts, sizes):
            stateful.access_range(start, size)
        result = simulate_trace(config, starts, sizes)
        assert result.misses == stateful.misses
        assert result.accesses == stateful.accesses

    def test_word_sequential_trace_spatial_locality(self):
        # 64 sequential words = 256 bytes = 8 lines of 32B: 8 misses.
        config = CacheConfig(64, 1, 32)
        starts = [i * 4 for i in range(64)]
        sizes = [4] * 64
        result = simulate_trace(config, starts, sizes)
        assert result.misses == 8
        assert result.accesses == 64
        assert result.miss_rate == pytest.approx(8 / 64)

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError, match="equal length"):
            simulate_trace(CacheConfig(4, 1, 16), [0, 16], [16])

    def test_empty_trace(self):
        result = simulate_trace(CacheConfig(4, 1, 16), [], [])
        assert result.misses == 0
        assert result.miss_rate == 0.0

    def test_numpy_input_accepted(self):
        import numpy as np

        result = simulate_trace(
            CacheConfig(4, 1, 16),
            np.array([0, 16, 0]),
            np.array([16, 16, 16]),
        )
        assert result.accesses == 3
        assert result.misses == 2
