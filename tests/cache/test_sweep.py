"""Unit tests for repro.cache.sweep."""

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cache.sweep import simulation_passes_required, sweep_design_space


def small_trace():
    starts = [0, 32, 64, 0, 128, 256, 32, 512, 0]
    sizes = [16, 16, 32, 16, 64, 16, 16, 16, 16]
    return starts, sizes


class TestSweep:
    def test_covers_all_configs(self):
        configs = [
            CacheConfig(8, 1, 16),
            CacheConfig(8, 2, 16),
            CacheConfig(16, 1, 32),
            CacheConfig(8, 1, 32),
        ]
        results = sweep_design_space(configs, small_trace())
        assert set(results) == set(configs)
        for config in configs:
            expected = simulate_trace(config, *small_trace())
            assert results[config].misses == expected.misses

    def test_trace_factory_called_once_for_design_space(self):
        calls = []

        def factory():
            calls.append(1)
            return small_trace()

        configs = [CacheConfig(8, 1, 16), CacheConfig(8, 1, 32)]
        sweep_design_space(configs, factory)
        # The whole-design-space kernel materializes the trace once and
        # derives every coarser line size from the finest stream.
        assert len(calls) == 1

    def test_trace_factory_called_per_line_size_with_perline(self):
        calls = []

        def factory():
            calls.append(1)
            return small_trace()

        configs = [CacheConfig(8, 1, 16), CacheConfig(8, 1, 32)]
        sweep_design_space(configs, factory, strategy="perline")
        assert len(calls) == 2

    def test_passes_required_counts_distinct_line_sizes(self):
        configs = [
            CacheConfig(8, 1, 16),
            CacheConfig(16, 2, 16),
            CacheConfig(8, 1, 32),
        ]
        assert simulation_passes_required(configs) == 2
        assert simulation_passes_required([]) == 0

    def test_order_of_magnitude_claim(self):
        """Section 1: 20 caches with 2 line sizes -> ~10x fewer passes."""
        configs = [
            CacheConfig(sets, assoc, line)
            for line in (16, 32)
            for sets in (16, 32, 64, 128, 256)
            for assoc in (1, 2)
        ]
        assert len(configs) == 20
        assert simulation_passes_required(configs) == 2
