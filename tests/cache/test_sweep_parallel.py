"""Parallel sweep_design_space must be result-identical to serial."""

from repro.cache.config import CacheConfig
from repro.cache.sweep import simulate_group_state, sweep_design_space
from repro.runtime.executor import shm_available

CONFIGS = [
    CacheConfig(8, 1, 16),
    CacheConfig(8, 2, 16),
    CacheConfig(16, 1, 16),
    CacheConfig(8, 1, 32),
    CacheConfig(4, 4, 32),
    CacheConfig(16, 2, 64),
]


def trace():
    starts = [0, 32, 64, 0, 128, 256, 32, 512, 0, 96, 72, 8]
    sizes = [16, 16, 32, 16, 64, 16, 16, 16, 16, 4, 4, 40]
    return starts, sizes


class TestParallelSweep:
    def test_parallel_equals_serial(self):
        serial = sweep_design_space(CONFIGS, trace())
        parallel = sweep_design_space(CONFIGS, trace(), max_workers=2)
        assert set(serial) == set(parallel)
        for config in CONFIGS:
            assert serial[config] == parallel[config]

    def test_parallel_with_trace_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return trace()

        parallel = sweep_design_space(CONFIGS, factory, max_workers=2)
        serial = sweep_design_space(CONFIGS, trace())
        # Unpicklable closure: shared-memory shipping materializes the
        # trace once in the parent (per-job pickling would call it per
        # group instead).
        assert len(calls) == (1 if shm_available() else 3)
        assert parallel == serial

    def test_single_group_stays_serial(self):
        configs = [CacheConfig(8, 1, 16), CacheConfig(16, 1, 16)]
        assert sweep_design_space(configs, trace(), max_workers=4) == (
            sweep_design_space(configs, trace())
        )


class TestGroupStateUnit:
    def test_state_round_trip(self):
        from repro.cache.cheetah import CheetahSimulator

        starts, sizes = trace()
        accesses, hists = simulate_group_state(16, [8, 16], 4, starts, sizes)
        rebuilt = CheetahSimulator.from_state(16, 4, accesses, hists)
        direct = CheetahSimulator(16, [8, 16], max_assoc=4)
        direct.simulate(starts, sizes)
        for sets in (8, 16):
            for assoc in (1, 2, 4):
                assert rebuilt.misses(sets, assoc) == direct.misses(sets, assoc)
