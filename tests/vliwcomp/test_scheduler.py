"""Unit tests for repro.vliwcomp.scheduler."""

import random

from repro.isa.operations import (
    OpClass,
    make_branch,
    make_float,
    make_int,
    make_load,
)
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P4221, P6332
from repro.vliwcomp.scheduler import schedule_block, schedule_is_legal


class TestBasicScheduling:
    def test_empty_block(self):
        schedule = schedule_block([], MachineDescription(P1111))
        assert schedule.num_instructions == 0
        assert schedule.cycles == 0

    def test_single_op(self):
        schedule = schedule_block([make_int(1)], MachineDescription(P1111))
        assert schedule.instructions == ((0,),)
        assert schedule.cycles == 1

    def test_resource_limit_serializes_same_class(self):
        # Four independent int ops on a 1-int-unit machine: 4 cycles.
        ops = [make_int(i, (100 + i,)) for i in range(4)]
        schedule = schedule_block(ops, MachineDescription(P1111))
        assert schedule.num_instructions == 4
        assert all(len(instr) == 1 for instr in schedule.instructions)

    def test_mixed_classes_pack_into_one_instruction(self):
        ops = [make_int(1, (101,)), make_float(2, (102,)), make_load(3, 103)]
        schedule = schedule_block(ops, MachineDescription(P1111))
        assert schedule.num_instructions == 1
        assert schedule.instructions[0] == (0, 1, 2)

    def test_latency_creates_stall_cycles(self):
        # load (lat 2) feeding an int op: issue cycles 0 and 2.
        ops = [make_load(1, 100), make_int(2, (1,))]
        schedule = schedule_block(ops, MachineDescription(P1111))
        assert schedule.num_instructions == 2
        assert schedule.cycles == 3
        assert schedule.stall_cycles == 1

    def test_branch_issues_no_earlier_than_other_ops(self):
        # Blocks end with their branch (the generator's invariant); the
        # branch may share the final cycle but never precede other ops.
        ops = [make_int(1, (100,)), make_int(2, (101,)), make_branch()]
        schedule = schedule_block(ops, MachineDescription(P1111))
        last_instr = schedule.instructions[-1]
        assert 2 in last_instr  # the branch op index

    def test_wide_machine_uses_fewer_cycles(self):
        ops = [make_int(i, (100 + i,)) for i in range(12)]
        narrow = schedule_block(ops, MachineDescription(P1111))
        wide = schedule_block(ops, MachineDescription(P6332))
        assert wide.num_instructions < narrow.num_instructions
        assert wide.ops_per_instruction() > narrow.ops_per_instruction()


class TestLegality:
    def random_ops(self, rng, n=30):
        ops = []
        defined = []
        for _ in range(n):
            roll = rng.random()
            srcs = tuple(
                rng.choice(defined) if defined and rng.random() < 0.6
                else 1000 + rng.randrange(100)
                for _ in range(2)
            )
            dest = rng.randrange(40)
            if roll < 0.5:
                ops.append(make_int(dest, srcs))
            elif roll < 0.7:
                ops.append(make_float(dest, srcs))
            else:
                ops.append(make_load(dest, srcs[0], stream=rng.randrange(3)))
            defined.append(dest)
        ops.append(make_branch((defined[-1],)))
        return ops

    def test_random_blocks_schedule_legally_on_all_machines(self):
        rng = random.Random(1234)
        for trial in range(10):
            ops = self.random_ops(rng)
            for processor in (P1111, P4221, P6332):
                mdes = MachineDescription(processor)
                schedule = schedule_block(ops, mdes)
                issued = [i for instr in schedule.instructions for i in instr]
                assert sorted(issued) == list(range(len(ops)))
                assert schedule_is_legal(ops, mdes, schedule), (
                    f"illegal schedule on {processor.name} trial {trial}"
                )

    def test_resource_counts_never_exceeded(self):
        rng = random.Random(7)
        ops = self.random_ops(rng, n=50)
        mdes = MachineDescription(P4221)
        schedule = schedule_block(ops, mdes)
        for instr in schedule.instructions:
            counts = {}
            for index in instr:
                cls = ops[index].opclass
                counts[cls] = counts.get(cls, 0) + 1
            for cls, used in counts.items():
                assert used <= P4221.units[cls]
