"""Unit tests for repro.vliwcomp.ifconvert."""

import pytest

from repro.isa.operations import make_branch, make_int, make_load
from repro.isa.program import BasicBlock, ControlFlowEdge, Procedure, Program
from repro.isa.validate import validate_program
from repro.vliwcomp.ifconvert import if_convert


def diamond_program(arm_ops=3, with_calls=False):
    """main: 0 -> {1, 2} -> 3 (a classic diamond)."""
    def ops(n, base):
        return [make_int(base + i, (100 + i,)) for i in range(n)] + [
            make_branch()
        ]

    blocks = [
        BasicBlock(0, ops(2, 0)),
        BasicBlock(
            1, ops(arm_ops, 10), calls=["leaf"] if with_calls else []
        ),
        BasicBlock(2, ops(arm_ops, 20)),
        BasicBlock(3, ops(1, 30)),
    ]
    edges = [
        ControlFlowEdge(0, 1, 0.7),
        ControlFlowEdge(0, 2, 0.3),
        ControlFlowEdge(1, 3, 1.0),
        ControlFlowEdge(2, 3, 1.0),
    ]
    program = Program(name="diamond", entry="main")
    program.add(Procedure(name="main", blocks=blocks, edges=edges))
    if with_calls:
        program.add(
            Procedure(name="leaf", blocks=[BasicBlock(0, ops(1, 0))])
        )
    validate_program(program)
    return program


class TestIfConvert:
    def test_diamond_merged(self):
        program = diamond_program()
        converted, stats = if_convert(program)
        assert stats.diamonds_converted == 1
        assert stats.blocks_removed == 2
        main = converted.procedure("main")
        assert len(main.blocks) == 2  # head + join
        head = main.block(0)
        # 2 head ops + 3 + 3 arm ops + the head branch.
        assert head.num_operations == 2 + 3 + 3 + 1
        (edge,) = main.successors(0)
        assert edge.dst == 3 and edge.probability == 1.0

    def test_operations_predicated_count(self):
        _, stats = if_convert(diamond_program(arm_ops=4))
        assert stats.operations_predicated == 8  # branches not counted

    def test_arm_registers_renamed_apart(self):
        converted, _ = if_convert(diamond_program())
        head = converted.procedure("main").block(0)
        dests = [op.dests[0] for op in head.operations if op.dests]
        assert len(dests) == len(set(dests))  # no WAW collisions

    def test_input_program_not_mutated(self):
        program = diamond_program()
        before = program.procedure("main").num_operations
        if_convert(program)
        assert program.procedure("main").num_operations == before
        assert len(program.procedure("main").blocks) == 4

    def test_arms_with_calls_not_converted(self):
        program = diamond_program(with_calls=True)
        _, stats = if_convert(program)
        assert stats.diamonds_converted == 0

    def test_oversized_arms_not_converted(self):
        program = diamond_program(arm_ops=10)
        _, stats = if_convert(program, max_arm_ops=4)
        assert stats.diamonds_converted == 0

    def test_result_validates(self):
        converted, _ = if_convert(diamond_program())
        validate_program(converted)  # must not raise


class TestOnGeneratedWorkloads:
    def test_tiny_workload_converts_and_validates(self, tiny):
        converted, stats = if_convert(tiny.program)
        validate_program(converted)
        assert converted.num_blocks == tiny.program.num_blocks - stats.blocks_removed
        # Operation count is preserved minus the arms' branches.
        assert (
            converted.num_operations
            == tiny.program.num_operations - stats.blocks_removed
        )

    def test_predicated_pipeline_runs_end_to_end(self, tiny):
        """The paper's predicated-reference flow: if-convert, then
        evaluate against a predicated 1111 reference."""
        from dataclasses import replace as dc_replace

        from repro.cache.config import CacheConfig
        from repro.experiments.pipeline import ExperimentPipeline
        from repro.machine.processor import make_processor
        from repro.workloads.suite import Workload

        converted, stats = if_convert(tiny.program)
        workload = Workload(
            name="tiny-pred",
            program=converted,
            streams=tiny.streams,
            profile=tiny.profile,
        )
        reference = make_processor(1, 1, 1, 1, has_predication=True)
        target = make_processor(3, 2, 2, 1, has_predication=True)
        pipeline = ExperimentPipeline(
            workload,
            reference=reference,
            max_visits=1_500,
            i_granule=200,
            u_granule=800,
        )
        dilation = pipeline.dilation(target)
        assert dilation > 1.0
        config = CacheConfig.from_size(1024, 1, 32)
        estimated = pipeline.estimated_misses(dilation, "icache", [config])
        assert estimated[config] > 0
