"""Unit tests for repro.vliwcomp.compile."""

from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P3221, P6332
from repro.machine.processor import make_processor
from repro.vliwcomp.compile import compile_program, speculation_capacity
from repro.vliwcomp.regalloc import SPILL_STREAM
from repro.workloads.suite import tiny_workload


class TestSpeculationCapacity:
    def test_paper_widths(self):
        assert speculation_capacity(4) == 0
        assert speculation_capacity(5) == 1
        assert speculation_capacity(8) == 2
        assert speculation_capacity(9) == 3
        assert speculation_capacity(14) == 5


class TestCompileProgram:
    def test_every_block_compiled(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        expected_keys = {
            (name, blk.block_id) for name, blk in tiny.program.all_blocks()
        }
        assert set(compiled.blocks) == expected_keys

    def test_reference_machine_does_not_speculate(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assert all(
            not cb.speculative_streams for cb in compiled.blocks.values()
        )

    def test_wide_machine_speculates_loads(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P6332))
        spec_counts = [
            len(cb.speculative_streams) for cb in compiled.blocks.values()
        ]
        assert sum(spec_counts) > 0
        assert max(spec_counts) <= speculation_capacity(P6332.issue_width)

    def test_speculation_disabled_by_feature_flag(self, tiny):
        no_spec = make_processor(6, 3, 3, 2, has_speculation=False)
        compiled = compile_program(tiny.program, MachineDescription(no_spec))
        assert all(
            not cb.speculative_streams for cb in compiled.blocks.values()
        )

    def test_speculative_ops_grow_code(self, tiny):
        narrow = compile_program(tiny.program, MachineDescription(P1111))
        wide = compile_program(tiny.program, MachineDescription(P3221))
        assert wide.total_operations() >= narrow.total_operations()

    def test_spill_ops_use_spill_stream(self, tiny):
        tiny_regs = make_processor(6, 3, 3, 2, int_registers=8)
        compiled = compile_program(tiny.program, MachineDescription(tiny_regs))
        spilled = [cb for cb in compiled.blocks.values() if cb.spill_ops]
        for cb in spilled:
            spill_ops = [
                op for op in cb.operations if op.stream == SPILL_STREAM
            ]
            assert len(spill_ops) == cb.spill_ops

    def test_schedules_cover_all_operations(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P3221))
        for cb in compiled.blocks.values():
            issued = sorted(
                i for instr in cb.schedule.instructions for i in instr
            )
            assert issued == list(range(len(cb.operations)))

    def test_wider_machine_fewer_cycles_overall(self, tiny):
        # Compare without speculation: hoisted loads add work per block,
        # so the clean width effect is visible only feature-for-feature.
        narrow = compile_program(
            tiny.program,
            MachineDescription(make_processor(1, 1, 1, 1, has_speculation=False)),
        )
        wide = compile_program(
            tiny.program,
            MachineDescription(make_processor(6, 3, 3, 2, has_speculation=False)),
        )
        narrow_cycles = sum(
            cb.issue_cycles for cb in narrow.blocks.values()
        )
        wide_cycles = sum(cb.issue_cycles for cb in wide.blocks.values())
        assert wide_cycles < narrow_cycles
