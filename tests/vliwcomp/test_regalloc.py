"""Unit tests for repro.vliwcomp.regalloc."""

from repro.isa.operations import make_int
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111
from repro.machine.processor import make_processor
from repro.vliwcomp.regalloc import SPILL_STREAM, estimate_spills
from repro.vliwcomp.scheduler import schedule_block


class TestEstimateSpills:
    def test_small_block_needs_no_spills(self):
        mdes = MachineDescription(P1111)
        ops = [make_int(i, (100 + i,)) for i in range(4)]
        schedule = schedule_block(ops, mdes)
        estimate = estimate_spills(ops, schedule, mdes)
        assert estimate.spill_loads == 0
        assert estimate.spill_stores == 0

    def test_pressure_beyond_regfile_spills(self):
        # A machine with a tiny register file: 8 regs, 8 reserved -> 1
        # usable; many overlapping live ranges must spill.
        tiny = make_processor(4, 1, 1, 1, int_registers=8)
        mdes = MachineDescription(tiny)
        # 12 values defined early, all consumed by one final op chain.
        ops = [make_int(i, (100 + i,)) for i in range(12)]
        ops.append(make_int(50, tuple(range(2))))
        # Keep all 12 live until the end by consuming them late.
        for k in range(2, 12, 2):
            ops.append(make_int(60 + k, (k, k + 1)))
        schedule = schedule_block(ops, mdes)
        estimate = estimate_spills(ops, schedule, mdes)
        assert estimate.max_live > 1
        assert estimate.spill_stores == estimate.spill_loads > 0
        assert estimate.total_ops == estimate.spill_loads * 2

    def test_wider_machine_has_equal_or_more_pressure(self):
        # Packing the same ops into fewer cycles can only overlap live
        # ranges more (or equally).
        ops = [make_int(i, (100 + i,)) for i in range(16)]
        ops.append(make_int(50, (0, 15)))
        narrow = MachineDescription(P1111)
        wide = MachineDescription(make_processor(6, 3, 3, 2))
        narrow_est = estimate_spills(ops, schedule_block(ops, narrow), narrow)
        wide_est = estimate_spills(ops, schedule_block(ops, wide), wide)
        assert wide_est.max_live >= narrow_est.max_live

    def test_spill_stream_constant_is_reserved(self):
        assert SPILL_STREAM < 0
