"""Unit tests for repro.vliwcomp.depgraph."""

from repro.isa.operations import (
    OpClass,
    make_branch,
    make_int,
    make_load,
    make_store,
)
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111
from repro.vliwcomp.depgraph import build_dependence_graph


def edges_of(graph):
    return {
        (src, dst, delay)
        for src in range(graph.n_ops)
        for dst, delay in graph.succs[src]
    }


class TestEdges:
    def setup_method(self):
        self.mdes = MachineDescription(P1111)

    def test_raw_edge_carries_producer_latency(self):
        ops = [make_load(1, addr_src=0), make_int(2, (1,))]
        graph = build_dependence_graph(ops, self.mdes)
        # Load latency is 2.
        assert (0, 1, 2) in edges_of(graph)

    def test_waw_edge(self):
        ops = [make_int(1), make_int(1)]
        graph = build_dependence_graph(ops, self.mdes)
        assert (0, 1, 1) in edges_of(graph)

    def test_war_edge_allows_same_cycle(self):
        ops = [make_int(2, (1,)), make_int(1)]
        graph = build_dependence_graph(ops, self.mdes)
        assert (0, 1, 0) in edges_of(graph)

    def test_same_stream_memory_ordering(self):
        ops = [
            make_store(value_src=1, addr_src=2, stream=5),
            make_load(3, addr_src=4, stream=5),
        ]
        graph = build_dependence_graph(ops, self.mdes)
        assert (0, 1, 1) in edges_of(graph)

    def test_different_stream_memory_unordered(self):
        ops = [
            make_store(value_src=1, addr_src=2, stream=5),
            make_load(3, addr_src=4, stream=6),
        ]
        graph = build_dependence_graph(ops, self.mdes)
        assert edges_of(graph) == set()

    def test_branch_depends_on_everything(self):
        ops = [make_int(1), make_int(2), make_branch()]
        graph = build_dependence_graph(ops, self.mdes)
        assert (0, 2, 0) in edges_of(graph)
        assert (1, 2, 0) in edges_of(graph)

    def test_independent_ops_have_no_edges(self):
        ops = [make_int(1, (10,)), make_int(2, (11,))]
        graph = build_dependence_graph(ops, self.mdes)
        assert edges_of(graph) == set()


class TestHeights:
    def test_chain_heights_accumulate_latency(self):
        mdes = MachineDescription(P1111)
        # load (lat 2) -> int (lat 1) -> int (lat 1)
        ops = [make_load(1), make_int(2, (1,)), make_int(3, (2,))]
        graph = build_dependence_graph(ops, mdes)
        assert graph.height[2] == 1
        assert graph.height[1] == 2
        assert graph.height[0] == 4

    def test_height_of_leaf_is_own_latency(self):
        mdes = MachineDescription(P1111)
        graph = build_dependence_graph([make_int(1)], mdes)
        assert graph.height == [1]
