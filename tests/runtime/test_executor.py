"""Fault-tolerant executor: retries, timeouts, fallback, accounting."""

import pytest

from repro.errors import RuntimeExecutionError
from repro.runtime import (
    ExecutorPolicy,
    FaultPlan,
    Job,
    RunJournal,
    run_jobs,
)


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad input {x}")


def make_jobs(n=6):
    return [Job(key=i, fn=square, args=(i,)) for i in range(n)]


def values(results):
    return {key: r.value for key, r in results.items()}


EXPECTED = {i: i * i for i in range(6)}


class TestSerial:
    def test_serial_results(self):
        results = run_jobs(make_jobs())
        assert values(results) == EXPECTED
        assert all(r.where == "serial" for r in results.values())
        assert all(r.attempts == 1 for r in results.values())

    def test_single_job_stays_serial(self):
        results = run_jobs(
            [Job(key="only", fn=square, args=(3,))],
            ExecutorPolicy(max_workers=8),
        )
        assert results["only"].value == 9
        assert results["only"].where == "serial"

    def test_empty(self):
        assert run_jobs([]) == {}

    def test_duplicate_keys_rejected(self):
        jobs = [Job(key="k", fn=square, args=(1,))] * 2
        with pytest.raises(RuntimeExecutionError, match="unique"):
            run_jobs(jobs)

    def test_serial_failure_after_retries(self):
        journal = RunJournal()
        results = run_jobs(
            [Job(key="bad", fn=boom, args=(1,))],
            ExecutorPolicy(retries=2, backoff=0.0),
            journal,
        )
        assert not results["bad"].ok
        assert results["bad"].attempts == 3
        assert "bad input" in results["bad"].error
        assert len(journal.select("retry")) == 2
        assert len(journal.select("job_failed")) == 1

    def test_args_factory_called_per_attempt(self):
        calls = []

        def factory():
            calls.append(1)
            return (4,)

        fault = FaultPlan("raise", match="k", times=1)
        results = run_jobs(
            [Job(key="k", fn=square, args_factory=factory)],
            ExecutorPolicy(retries=2, backoff=0.0, fault=fault),
        )
        assert results["k"].value == 16
        assert results["k"].attempts == 2
        # The failing attempt fires before the job function runs, so
        # only the succeeding attempt materialized arguments.
        assert len(calls) == 1


class TestParallel:
    def test_parallel_matches_serial(self):
        results = run_jobs(make_jobs(), ExecutorPolicy(max_workers=3))
        assert values(results) == EXPECTED
        assert all(r.where == "worker" for r in results.values())

    def test_worker_raise_is_retried(self):
        journal = RunJournal()
        fault = FaultPlan("raise", match="2", times=1)
        results = run_jobs(
            make_jobs(),
            ExecutorPolicy(max_workers=3, retries=2, backoff=0.01, fault=fault),
            journal,
        )
        assert values(results) == EXPECTED
        assert results[2].attempts == 2
        retries = journal.select("retry")
        assert len(retries) == 1
        assert retries[0]["key"] == "2"
        assert "InjectedWorkerFault" in retries[0]["error"]

    def test_worker_raise_exhausts_retries(self):
        journal = RunJournal()
        fault = FaultPlan("raise", match="4", times=99)
        results = run_jobs(
            make_jobs(),
            ExecutorPolicy(max_workers=3, retries=1, backoff=0.0, fault=fault),
            journal,
        )
        assert not results[4].ok
        assert results[4].attempts == 2
        # The failure is isolated: every other job still succeeded.
        good = {k: r.value for k, r in results.items() if r.ok}
        assert good == {k: v for k, v in EXPECTED.items() if k != 4}
        assert len(journal.select("job_failed")) == 1

    def test_worker_death_falls_back_to_serial(self):
        journal = RunJournal()
        fault = FaultPlan("exit", match="3", times=1)
        results = run_jobs(
            make_jobs(),
            ExecutorPolicy(max_workers=2, retries=2, backoff=0.0, fault=fault),
            journal,
        )
        assert values(results) == EXPECTED
        fallbacks = journal.select("fallback")
        assert len(fallbacks) == 1
        assert fallbacks[0]["reason"] == "broken_pool"
        # The crashing job was re-run in-process (fault degraded to raise,
        # then retried) and still produced its value.
        assert results[3].where == "serial-fallback"

    def test_fallback_disabled_raises(self):
        fault = FaultPlan("exit", match="3", times=1)
        with pytest.raises(RuntimeExecutionError, match="broken_pool"):
            run_jobs(
                make_jobs(),
                ExecutorPolicy(
                    max_workers=2,
                    retries=2,
                    backoff=0.0,
                    serial_fallback=False,
                    fault=fault,
                ),
            )

    def test_hung_worker_times_out_and_retries(self):
        journal = RunJournal()
        fault = FaultPlan("hang", match="1", times=1)
        results = run_jobs(
            make_jobs(),
            ExecutorPolicy(
                max_workers=2, timeout=0.5, retries=2, backoff=0.0, fault=fault
            ),
            journal,
        )
        assert values(results) == EXPECTED
        timeouts = journal.select("timeout")
        assert len(timeouts) == 1
        assert timeouts[0]["key"] == "1"
        assert journal.select("pool_restart")
        assert results[1].attempts == 2

    def test_pool_start_failure_degrades(self, monkeypatch):
        import repro.runtime.executor as executor_module

        def refuse(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", refuse
        )
        journal = RunJournal()
        results = run_jobs(
            make_jobs(), ExecutorPolicy(max_workers=3), journal
        )
        assert values(results) == EXPECTED
        assert journal.select("pool_start_failed")
        fallbacks = journal.select("fallback")
        assert fallbacks and fallbacks[0]["reason"] == "pool_start_failed"

    def test_worker_utilization_recorded(self):
        journal = RunJournal()
        run_jobs(make_jobs(), ExecutorPolicy(max_workers=2), journal)
        utils = journal.select("worker_util")
        assert len(utils) == 1
        assert utils[0]["workers"] == 2
        assert 0.0 <= utils[0]["utilization"] <= 1.0


class TestFaultPlan:
    def test_match_and_times(self):
        plan = FaultPlan("raise", match="ic", times=2)
        assert plan.fires(("icache", 32), 0)
        assert plan.fires(("icache", 32), 1)
        assert not plan.fires(("icache", 32), 2)
        assert not plan.fires(("dcache", 32), 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="fault kind"):
            FaultPlan("segv")
