"""Run journal: recording, persistence, summaries, active-journal scoping."""

import json

import pytest

from repro.errors import ReproError
from repro.runtime import (
    NullJournal,
    RunJournal,
    active_journal,
    resolve_journal,
    use_journal,
)


class TestRecording:
    def test_record_orders_events(self):
        journal = RunJournal()
        journal.record("pass", role="sweep", wall_s=0.5)
        journal.record("retry", key="a", attempt=0)
        assert [e["event"] for e in journal.events] == ["pass", "retry"]
        assert [e["seq"] for e in journal.events] == [0, 1]
        assert len(journal) == 2

    def test_timed_measures_and_merges(self):
        journal = RunJournal()
        with journal.timed("pass", role="sweep") as extra:
            extra["line_size"] = 32
        (event,) = journal.select("pass")
        assert event["role"] == "sweep"
        assert event["line_size"] == 32
        assert event["wall_s"] >= 0.0

    def test_observe_cache_prefers_stats(self):
        class FakeCache:
            hits = 3
            misses = 1

            def stats(self):
                return {"hits": 3, "misses": 1, "hit_rate": 0.75, "entries": 4}

        journal = RunJournal()
        journal.observe_cache(FakeCache(), label="sweep-checkpoint")
        (event,) = journal.select("cache")
        assert event["label"] == "sweep-checkpoint"
        assert event["hit_rate"] == 0.75


class TestPersistence:
    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "run" / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record("pass", role="sweep", wall_s=0.25, trace_ranges=10)
            journal.record("retry", key="g32", attempt=0, error="boom")
        loaded = RunJournal.load(path)
        assert [e["event"] for e in loaded.events] == ["pass", "retry"]
        assert loaded.select("retry")[0]["key"] == "g32"

    def test_flushed_per_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.record("pass", wall_s=0.1)
        # Readable before close: a killed run still leaves the event.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "pass"
        journal.close()

    def test_load_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"event": "pass"}\nnot json\n')
        with pytest.raises(ReproError, match="line 2"):
            RunJournal.load(path)


class TestSummary:
    def build(self):
        journal = RunJournal()
        journal.record("pass", role="sweep", wall_s=0.5, trace_ranges=100,
                       where="worker")
        journal.record("pass", role="sweep", wall_s=0.25, trace_ranges=50,
                       where="serial")
        journal.record("job", key="a", attempts=1, wall_s=0.5, where="worker")
        journal.record("retry", key="b", attempt=0, error="x")
        journal.record("timeout", key="c", attempt=0, timeout_s=1.0)
        journal.record("job_failed", key="b", attempts=3, error="x")
        journal.record("fallback", reason="broken_pool", remaining=2)
        journal.record("checkpoint", action="hit", key="k1")
        journal.record("checkpoint", action="store", key="k2")
        journal.record("cache", label="sweep-checkpoint", hits=1, misses=2,
                       hit_rate=1 / 3, entries=2)
        journal.record("worker_util", workers=4, busy_s=2.0, wall_s=1.0,
                       utilization=0.5)
        return journal

    def test_summary_aggregates(self):
        s = self.build().summary()
        assert s["passes"]["count"] == 2
        assert s["passes"]["trace_ranges"] == 150
        assert s["passes"]["by_where"] == {"worker": 1, "serial": 1}
        assert s["jobs"] == {
            "completed": 1,
            "failed": 1,
            "retries": 1,
            "timeouts": 1,
            "wall_s": 0.5,
        }
        assert s["fallbacks"] == {"broken_pool": 1}
        assert s["checkpoints"] == {"hit": 1, "store": 1}
        assert s["caches"]["sweep-checkpoint"]["hits"] == 1
        assert s["worker_util"]["utilization"] == 0.5

    def test_summary_text_mentions_everything(self):
        text = self.build().summary_text(title="Journal")
        assert text.startswith("Journal\n=======")
        for needle in (
            "simulation passes: 2",
            "1 retries",
            "1 timeouts",
            "broken_pool x1",
            "hit=1",
            "sweep-checkpoint: hits=1",
            "worker utilization: 50.0%",
        ):
            assert needle in text, text


class TestActiveJournal:
    def test_default_is_null(self):
        assert isinstance(active_journal(), NullJournal)
        assert isinstance(resolve_journal(None), NullJournal)

    def test_use_journal_scopes(self):
        journal = RunJournal()
        with use_journal(journal):
            assert active_journal() is journal
            assert resolve_journal(None) is journal
            explicit = RunJournal()
            assert resolve_journal(explicit) is explicit
        assert isinstance(active_journal(), NullJournal)

    def test_null_journal_drops_everything(self):
        null = NullJournal()
        null.record("pass", wall_s=1.0)
        with null.timed("pass") as extra:
            extra["x"] = 1
        null.observe_cache(object())
        assert len(null) == 0
