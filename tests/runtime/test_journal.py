"""Run journal: recording, persistence, summaries, active-journal scoping."""

import json

import pytest

from repro.errors import ReproError
from repro.runtime import (
    NullJournal,
    RunJournal,
    active_journal,
    resolve_journal,
    use_journal,
)


class TestRecording:
    def test_record_orders_events(self):
        journal = RunJournal()
        journal.record("pass", role="sweep", wall_s=0.5)
        journal.record("retry", key="a", attempt=0)
        assert [e["event"] for e in journal.events] == ["pass", "retry"]
        assert [e["seq"] for e in journal.events] == [0, 1]
        assert len(journal) == 2

    def test_timed_measures_and_merges(self):
        journal = RunJournal()
        with journal.timed("pass", role="sweep") as extra:
            extra["line_size"] = 32
        (event,) = journal.select("pass")
        assert event["role"] == "sweep"
        assert event["line_size"] == 32
        assert event["wall_s"] >= 0.0

    def test_observe_cache_prefers_stats(self):
        class FakeCache:
            hits = 3
            misses = 1

            def stats(self):
                return {"hits": 3, "misses": 1, "hit_rate": 0.75, "entries": 4}

        journal = RunJournal()
        journal.observe_cache(FakeCache(), label="sweep-checkpoint")
        (event,) = journal.select("cache")
        assert event["label"] == "sweep-checkpoint"
        assert event["hit_rate"] == 0.75


class TestPersistence:
    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "run" / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record("pass", role="sweep", wall_s=0.25, trace_ranges=10)
            journal.record("retry", key="g32", attempt=0, error="boom")
        loaded = RunJournal.load(path)
        assert [e["event"] for e in loaded.events] == ["pass", "retry"]
        assert loaded.select("retry")[0]["key"] == "g32"

    def test_flushed_per_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.record("pass", wall_s=0.1)
        # Readable before close: a killed run still leaves the event.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "pass"
        journal.close()

    def test_load_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"event": "pass"}\nnot json\n')
        with pytest.raises(ReproError, match="line 2"):
            RunJournal.load(path)


class TestSummary:
    def build(self):
        journal = RunJournal()
        journal.record("pass", role="sweep", wall_s=0.5, trace_ranges=100,
                       where="worker")
        journal.record("pass", role="sweep", wall_s=0.25, trace_ranges=50,
                       where="serial")
        journal.record("job", key="a", attempts=1, wall_s=0.5, where="worker")
        journal.record("retry", key="b", attempt=0, error="x")
        journal.record("timeout", key="c", attempt=0, timeout_s=1.0)
        journal.record("job_failed", key="b", attempts=3, error="x")
        journal.record("fallback", reason="broken_pool", remaining=2)
        journal.record("checkpoint", action="hit", key="k1")
        journal.record("checkpoint", action="store", key="k2")
        journal.record("cache", label="sweep-checkpoint", hits=1, misses=2,
                       hit_rate=1 / 3, entries=2)
        journal.record("worker_util", workers=4, busy_s=2.0, wall_s=1.0,
                       utilization=0.5)
        return journal

    def test_summary_aggregates(self):
        s = self.build().summary()
        assert s["passes"]["count"] == 2
        assert s["passes"]["trace_ranges"] == 150
        assert s["passes"]["by_where"] == {"worker": 1, "serial": 1}
        assert s["jobs"] == {
            "completed": 1,
            "failed": 1,
            "retries": 1,
            "timeouts": 1,
            "wall_s": 0.5,
        }
        assert s["fallbacks"] == {"broken_pool": 1}
        assert s["checkpoints"] == {"hit": 1, "store": 1}
        assert s["caches"]["sweep-checkpoint"]["hits"] == 1
        assert s["worker_util"]["utilization"] == 0.5

    def test_summary_text_mentions_everything(self):
        text = self.build().summary_text(title="Journal")
        assert text.startswith("Journal\n=======")
        for needle in (
            "simulation passes: 2",
            "1 retries",
            "1 timeouts",
            "broken_pool x1",
            "hit=1",
            "sweep-checkpoint: hits=1",
            "worker utilization: 50.0%",
        ):
            assert needle in text, text


class TestFullVocabularySummary:
    """One journal carrying every event the codebase records: summary()
    must aggregate each family and summary_text() must mention each
    section — guarding against a new event family being silently
    dropped from the report."""

    def build(self):
        j = RunJournal()
        # Simulation passes (serial + worker + chunked) and sampling.
        j.record("pass", role="sweep", line_size=16, where="serial",
                 trace_ranges=100, wall_s=0.5, kernel_s=0.2)
        j.record("pass", role="sweep", line_size=32, where="worker",
                 trace_ranges=100, wall_s=0.25, chunks=4,
                 resumed_at_chunk=2)
        j.record("sampled_pass", role="sampled-sweep", line_size=16,
                 intervals=3, sampled_ranges=120, trace_ranges=1200,
                 wall_s=0.05)
        # Stack-distance kernels: per-family and fused dispatch.
        j.record("stackdist", line_size=16, refs=500, wall_s=0.1,
                 path="kernel", residues=2)
        j.record("stackdist_fused", problems=3, refs=900, sorted_refs=900,
                 dominance_refs=100, residues=1, wall_s=0.2, sort_s=0.08,
                 scan_s=0.06, expand_s=0.04, dominance_s=0.02,
                 by_path={"kernel": 2, "scalar": 1})
        # Design-space tower derivation.
        j.record("designspace", line_sizes=[16, 32, 64], sorts=1, splits=2,
                 wall_s=0.12, mode="fused-batch")
        # Executor lifecycle: jobs, faults, retries, fallback.
        j.record("job", key="a", attempts=1, wall_s=0.5, where="worker")
        j.record("job_failed", key="b", attempts=3, error="boom")
        j.record("retry", key="b", attempt=0, error="boom")
        j.record("timeout", key="c", attempt=0, timeout_s=1.0)
        j.record("fallback", reason="broken_pool", remaining=2)
        # Checkpointing and cache snapshots.
        j.record("checkpoint", action="hit", key="k1")
        j.record("checkpoint", action="miss", key="k2")
        j.record("checkpoint", action="store", key="k2")
        j.record("cache", label="sweep-checkpoint", hits=1, misses=1,
                 hit_rate=0.5, entries=2)
        # Zero-copy trace shipping.
        j.record("shm_segment", action="create", name="seg0",
                 bytes=1 << 20)
        j.record("shm_attach", line_size=16, bytes_shipped=100,
                 bytes_mapped=1 << 20)
        j.record("trace_shipping", mode="chunkpath", jobs=2,
                 trace_ranges=1000, chunks=4)
        # Worker pool utilization.
        j.record("worker_util", workers=4, busy_s=2.0, wall_s=1.0,
                 utilization=0.5)
        # Service fleet protocol: leases, workers, fencing, dedup.
        j.record("lease", action="grant", id="job-1", owner="w1", token=1)
        j.record("lease", action="expired", id="job-2", where="reaper")
        j.record("worker", action="register", id="w1", tags=[])
        j.record("worker", action="reaped", id="w2")
        j.record("fence_rejected", id="job-2", where="http",
                 detail="stale token")
        j.record("service_dedup", kind="sweep", trace_key="t",
                 from_store=3, simulated=1)
        j.record("service_job", id="job-1", state="done", attempt=1)
        j.record("http", client="127.0.0.1", line="GET /runs 200")
        # Memory accounting.
        j.record("linestream_evict", entries=2, bytes=4096)
        j.record("rss", max_rss_bytes=1 << 24, budget_bytes=1 << 26)
        # Analytics run recording (the subsystem's own breadcrumb).
        j.record("analytics_run", id="run-x", kind="sweep", state="done",
                 rows=4, wall_s=0.75)
        return j

    def test_summary_covers_every_family(self):
        s = self.build().summary()
        assert s["events"] == 30
        assert s["passes"]["count"] == 2
        assert s["passes"]["by_where"] == {"serial": 1, "worker": 1}
        assert s["stackdist"]["count"] == 1
        assert s["stackdist_fused"]["problems"] == 3
        assert s["stackdist_fused"]["by_path"] == {"kernel": 2, "scalar": 1}
        assert s["designspace"]["towers"] == 1
        assert s["designspace"]["line_sizes"] == 3
        assert s["jobs"] == {
            "completed": 1,
            "failed": 1,
            "retries": 1,
            "timeouts": 1,
            "wall_s": 0.5,
        }
        assert s["fallbacks"] == {"broken_pool": 1}
        assert s["checkpoints"] == {"hit": 1, "miss": 1, "store": 1}
        assert s["caches"]["sweep-checkpoint"]["hit_rate"] == 0.5
        assert s["trace_shipping"]["bytes_shipped"] == 100
        assert s["trace_shipping"]["bytes_saved"] == (1 << 20) - 100
        assert s["trace_shipping"]["segments"] == {"create": 1}
        assert s["worker_util"]["utilization"] == 0.5
        assert s["fleet"]["leases"] == {"grant": 1, "expired": 1}
        assert s["fleet"]["workers"] == {"register": 1, "reaped": 1}
        assert s["fleet"]["fence_rejections"] == 1
        assert s["streaming"]["chunked_passes"] == 1
        assert s["streaming"]["resumed_passes"] == 1
        assert s["streaming"]["chunkpath_jobs"] == 2
        assert s["sampling"] == {
            "passes": 1,
            "intervals": 3,
            "sampled_ranges": 120,
            "trace_ranges": 1200,
        }
        assert s["memory"]["linestream_evictions"] == 2
        assert s["memory"]["max_rss_bytes"] == 1 << 24
        assert s["memory"]["rss_budget_bytes"] == 1 << 26

    def test_summary_text_mentions_every_section(self):
        text = self.build().summary_text(title="Everything")
        for needle in (
            "simulation passes: 2",
            "stack-distance kernel: 1 families",
            "fused stack-distance dispatches: 1",
            "jobs: 1 completed, 1 failed, 1 retries, 1 timeouts",
            "design-space towers: 1",
            "trace shipping: 1 shm jobs",
            "fallbacks: broken_pool x1",
            "checkpoints: hit=1, miss=1, store=1",
            "sweep-checkpoint: hits=1",
            "worker utilization: 50.0%",
            "fleet: leases expired=1, grant=1; "
            "workers reaped=1, register=1; 1 fence rejections",
            "streaming: 1 chunked passes",
            "sampling: 1 sampled passes",
            "memory: 2 linestream evictions",
        ):
            assert needle in text, f"missing {needle!r} in:\n{text}"


class TestActiveJournal:
    def test_default_is_null(self):
        assert isinstance(active_journal(), NullJournal)
        assert isinstance(resolve_journal(None), NullJournal)

    def test_use_journal_scopes(self):
        journal = RunJournal()
        with use_journal(journal):
            assert active_journal() is journal
            assert resolve_journal(None) is journal
            explicit = RunJournal()
            assert resolve_journal(explicit) is explicit
        assert isinstance(active_journal(), NullJournal)

    def test_null_journal_drops_everything(self):
        null = NullJournal()
        null.record("pass", wall_s=1.0)
        with null.timed("pass") as extra:
            extra["x"] = 1
        null.observe_cache(object())
        assert len(null) == 0
