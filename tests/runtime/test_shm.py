"""Shared-memory trace shipping: zero-copy mapping and segment hygiene.

The contract under test: the parent owns every segment, workers only
map; after any sweep — clean, fault-injected, or degraded to serial
fallback — no segment remains in ``/dev/shm`` and results are
bit-identical to per-job pickling.
"""

import pickle

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.sweep import sweep_design_space
from repro.errors import RuntimeExecutionError
from repro.runtime.executor import (
    ExecutorPolicy,
    FaultPlan,
    SharedSegmentManager,
    segment_manager,
    shm_available,
)
from repro.runtime.journal import RunJournal

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

CONFIGS = [
    CacheConfig(8, 1, 16),
    CacheConfig(16, 2, 16),
    CacheConfig(8, 1, 32),
    CacheConfig(4, 4, 32),
    CacheConfig(16, 2, 64),
]


def trace():
    rng = np.random.default_rng(2)
    return rng.integers(0, 1 << 12, 300), rng.integers(1, 48, 300)


def assert_unlinked(journal: RunJournal) -> None:
    """Every segment the journal saw created must be gone from the OS."""
    created = {
        e["segment"]
        for e in journal.select("shm_segment")
        if e["action"] == "create"
    }
    assert created, "expected at least one shm segment"
    from multiprocessing import shared_memory

    for name in created:
        with pytest.raises(FileNotFoundError):
            seg = shared_memory.SharedMemory(name=name)
            seg.close()  # pragma: no cover - only on leak


class TestHandle:
    def test_round_trip_through_pickle(self):
        manager = SharedSegmentManager()
        starts = np.arange(50, dtype=np.int64)
        sizes = np.full(50, 7, dtype=np.int64)
        handle = manager.acquire("t", {"starts": starts, "sizes": sizes})
        try:
            assert len(pickle.dumps(handle)) < 4096 < handle.nbytes + 4096
            clone = pickle.loads(pickle.dumps(handle))
            with clone.open() as arrays:
                assert arrays["starts"].tolist() == starts.tolist()
                assert arrays["sizes"].tolist() == sizes.tolist()
                assert not arrays["starts"].flags.writeable
        finally:
            manager.release("t")

    def test_refcounted_unlink_on_last_release(self):
        manager = SharedSegmentManager()
        arrays = {"x": np.arange(8)}
        handle = manager.acquire("k", arrays)
        assert manager.acquire("k", arrays) is handle
        manager.release("k")
        assert manager.active() == {"k": handle.name}
        manager.release("k")
        assert manager.active() == {}
        with pytest.raises(FileNotFoundError):
            with handle.open():
                pass

    def test_release_of_unknown_key_is_a_noop(self):
        SharedSegmentManager().release("never-acquired")

    def test_shutdown_unlinks_everything(self):
        manager = SharedSegmentManager()
        handle = manager.acquire("a", {"x": np.arange(4)})
        manager.shutdown()
        assert manager.active() == {}
        with pytest.raises(FileNotFoundError):
            with handle.open():
                pass


class TestPolicy:
    def test_rejects_unknown_mode(self):
        with pytest.raises(RuntimeExecutionError, match="shipping mode"):
            ExecutorPolicy(trace_shipping="zeromq")

    def test_modes_accepted(self):
        for mode in ("auto", "shm", "pickle"):
            assert ExecutorPolicy(trace_shipping=mode).trace_shipping == mode


class TestSweepHygiene:
    def baseline(self):
        return sweep_design_space(CONFIGS, trace(), strategy="perline")

    def test_clean_parallel_sweep_no_leak(self):
        journal = RunJournal()
        policy = ExecutorPolicy(max_workers=2, trace_shipping="shm")
        results = sweep_design_space(
            CONFIGS, trace(), policy=policy, journal=journal
        )
        assert results == self.baseline()
        assert segment_manager().active() == {}
        assert_unlinked(journal)

    def test_shm_results_identical_to_pickle(self):
        shm = sweep_design_space(
            CONFIGS,
            trace(),
            policy=ExecutorPolicy(max_workers=2, trace_shipping="shm"),
        )
        pickled = sweep_design_space(
            CONFIGS,
            trace(),
            policy=ExecutorPolicy(max_workers=2, trace_shipping="pickle"),
        )
        assert shm == pickled

    def test_worker_kill_no_leak(self):
        """A worker dying mid-sweep must not orphan the segment."""
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=2,
            backoff=0.0,
            trace_shipping="shm",
            fault=FaultPlan(kind="exit", match="32", times=1),
        )
        results = sweep_design_space(
            CONFIGS, trace(), policy=policy, journal=journal
        )
        assert results == self.baseline()
        assert segment_manager().active() == {}
        assert_unlinked(journal)

    def test_broken_pool_serial_fallback_no_leak(self):
        """Every attempt dies -> serial fallback maps the segment
        in-process (the parent still holds it) and unlinks after."""
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=1,
            backoff=0.0,
            trace_shipping="shm",
            fault=FaultPlan(kind="exit", match="", times=1),
        )
        results = sweep_design_space(
            CONFIGS, trace(), policy=policy, journal=journal
        )
        assert results == self.baseline()
        assert journal.select("fallback")
        assert segment_manager().active() == {}
        assert_unlinked(journal)

    def test_failed_sweep_still_unlinks(self):
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=0,
            backoff=0.0,
            trace_shipping="shm",
            fault=FaultPlan(kind="raise", match="", times=99),
        )
        with pytest.raises(RuntimeExecutionError):
            sweep_design_space(
                CONFIGS, trace(), policy=policy, journal=journal
            )
        assert segment_manager().active() == {}
        assert_unlinked(journal)

    def test_journal_counts_bytes_saved(self):
        journal = RunJournal()
        policy = ExecutorPolicy(max_workers=2, trace_shipping="shm")
        sweep_design_space(CONFIGS, trace(), policy=policy, journal=journal)
        summary = journal.summary()["trace_shipping"]
        assert summary["shm_jobs"] == 3  # one per distinct line size
        assert summary["bytes_mapped"] > summary["bytes_shipped"]
        assert summary["bytes_saved"] > 0
        assert summary["segments"]["create"] == 1
        assert summary["segments"]["unlink"] == 1
        text = journal.summary_text()
        assert "trace shipping" in text and "shm jobs" in text


class TestPrimeShipping:
    def test_prime_parallel_uses_shm_and_cleans_up(self):
        from repro.explore.evaluators import MemoryEvaluator
        from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace

        rng = np.random.default_rng(9)
        n = 200
        instr = RangeTrace.build(
            rng.integers(0, 4096, n).tolist(),
            rng.integers(1, 32, n).tolist(),
            KIND_INSTR,
        )
        data = RangeTrace.build(
            rng.integers(0, 4096, n).tolist(),
            rng.integers(1, 32, n).tolist(),
            KIND_DATA,
        )
        unified = RangeTrace.concatenate([instr, data])
        configs = [CacheConfig(8, 1, 16), CacheConfig(8, 1, 32)]

        def build():
            ev = MemoryEvaluator(
                instr, data, unified, params=None, max_assoc=2
            )
            for role in ("icache", "dcache"):
                ev.register(role, configs)
            return ev

        journal = RunJournal()
        shm_ev = build()
        shm_ev.prime(max_workers=2, journal=journal)
        assert journal.select("trace_shipping")[0]["mode"] == "shm"
        # One segment per role, both unlinked.
        created = [
            e
            for e in journal.select("shm_segment")
            if e["action"] == "create"
        ]
        assert len(created) == 2
        assert segment_manager().active() == {}
        assert_unlinked(journal)

        pickle_ev = build()
        pickle_ev.prime(
            max_workers=2,
            policy=ExecutorPolicy(max_workers=2, trace_shipping="pickle"),
        )
        for role in ("icache", "dcache"):
            for config in configs:
                assert shm_ev.simulated_misses(role, config) == (
                    pickle_ev.simulated_misses(role, config)
                )
