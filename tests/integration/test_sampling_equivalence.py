"""Section 5.2 sampling: truncated traces equal truncated executions.

"we also allow sampling an initial segment of the trace to evaluate
memory hierarchy performance."  For that to be sound, taking the first N
visits of a long event trace must equal emulating with an N-visit budget
— the emulator's determinism makes the two literally identical, and
every derived address trace (and therefore every simulated miss count)
follows.
"""

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.iformat.assembler import assemble
from repro.iformat.linker import link
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P3221
from repro.trace.emulator import emulate
from repro.trace.generator import TraceGenerator
from repro.trace.sampling import sample_events
from repro.vliwcomp.compile import compile_program


class TestSamplingEquivalence:
    def test_sampled_trace_equals_budgeted_emulation(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P3221))
        long = emulate(
            tiny.program, tiny.streams, seed=9, max_visits=2400,
            compiled=compiled,
        )
        short = emulate(
            tiny.program, tiny.streams, seed=9, max_visits=800,
            compiled=compiled,
        )
        sampled = sample_events(long, 800)
        assert sampled.blocks == short.blocks
        assert np.array_equal(sampled.visit_blocks, short.visit_blocks)
        assert np.array_equal(sampled.data_addrs, short.data_addrs)
        assert np.array_equal(sampled.data_writes, short.data_writes)
        assert np.array_equal(sampled.data_offsets, short.data_offsets)

    def test_sampled_misses_equal_budgeted_misses(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        binary = link(
            tiny.program,
            assemble(compiled),
            packet_bytes=16,
            processor_name="1111",
        )
        long = emulate(
            tiny.program, tiny.streams, seed=4, max_visits=2400,
            compiled=compiled,
        )
        sampled = sample_events(long, 600)
        short = emulate(
            tiny.program, tiny.streams, seed=4, max_visits=600,
            compiled=compiled,
        )
        config = CacheConfig.from_size(1024, 1, 32)
        for events in (sampled, short):
            trace = TraceGenerator(binary, events).unified_trace()
            misses = simulate_trace(config, trace.starts, trace.sizes).misses
            if events is sampled:
                expected = misses
        assert misses == expected

    def test_sampling_is_a_prefix(self, tiny):
        """Sampled misses lower-bound the full trace's misses."""
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        binary = link(
            tiny.program, assemble(compiled), packet_bytes=16
        )
        long = emulate(
            tiny.program, tiny.streams, seed=4, max_visits=2400,
            compiled=compiled,
        )
        config = CacheConfig.from_size(1024, 1, 32)
        full_trace = TraceGenerator(binary, long).instruction_trace()
        full = simulate_trace(
            config, full_trace.starts, full_trace.sizes
        ).misses
        part_trace = TraceGenerator(
            binary, sample_events(long, 500)
        ).instruction_trace()
        part = simulate_trace(
            config, part_trace.starts, part_trace.sizes
        ).misses
        assert part <= full
