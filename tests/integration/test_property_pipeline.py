"""Property-based integration tests (hypothesis) over generated programs.

Randomized workload profiles drive the real pipeline stages, checking the
cross-module invariants on arbitrary (not hand-picked) programs: linker
layout legality, dilation positivity, Lemma-1 exactness, and the
processor-independence of base event traces.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.cache.config import WORD_BYTES, CacheConfig
from repro.cache.simulator import simulate_trace
from repro.core.dilated_trace import dilate_binary
from repro.core.dilation import measure_dilation
from repro.iformat.assembler import assemble
from repro.iformat.linker import link
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P6332
from repro.trace.emulator import emulate
from repro.trace.generator import TraceGenerator
from repro.vliwcomp.compile import compile_program
from repro.workloads.profiles import StreamProfile, WorkloadProfile
from repro.workloads.synth import generate_workload


@st.composite
def profiles(draw):
    return WorkloadProfile(
        name="prop",
        seed=draw(st.integers(min_value=0, max_value=2**20)),
        n_procedures=draw(st.integers(min_value=1, max_value=6)),
        blocks_per_proc=(2, draw(st.integers(min_value=3, max_value=8))),
        mean_ops_per_block=draw(
            st.floats(min_value=2.0, max_value=14.0)
        ),
        op_mix=(
            draw(st.floats(min_value=0.1, max_value=1.0)),
            draw(st.floats(min_value=0.0, max_value=0.5)),
            draw(st.floats(min_value=0.1, max_value=0.6)),
        ),
        dependence_density=draw(st.floats(min_value=0.0, max_value=0.9)),
        loop_probability=draw(st.floats(min_value=0.0, max_value=0.4)),
        loop_continue=draw(st.floats(min_value=0.5, max_value=0.95)),
        branch_probability=draw(st.floats(min_value=0.0, max_value=0.5)),
        call_density=draw(st.floats(min_value=0.0, max_value=0.3)),
        streams=(
            StreamProfile("sequential", region_kb=4),
            StreamProfile("random", region_kb=2),
        ),
        main_iterations=20,
    )


def build(profile, processor):
    generated = generate_workload(profile)
    mdes = MachineDescription(processor)
    compiled = compile_program(generated.program, mdes)
    binary = link(
        generated.program,
        assemble(compiled),
        packet_bytes=processor.issue_width * WORD_BYTES,
        processor_name=processor.name,
    )
    return generated, compiled, binary


@given(profile=profiles())
@settings(max_examples=20, deadline=None)
def test_linker_layout_legal_for_generated_programs(profile):
    for processor in (P1111, P6332):
        _, _, binary = build(profile, processor)
        images = sorted(binary.images, key=lambda im: im.start)
        for image in images:
            assert image.start % WORD_BYTES == 0
            assert image.size % WORD_BYTES == 0
            assert image.size > 0
        for a, b in zip(images, images[1:]):
            assert a.end <= b.start


@given(profile=profiles())
@settings(max_examples=15, deadline=None)
def test_wide_machine_always_dilates(profile):
    generated, _, narrow_binary = build(profile, P1111)
    _, _, wide_binary = build(profile, P6332)
    info = measure_dilation(narrow_binary, wide_binary)
    assert info.text_dilation > 1.0
    assert (info.block_dilations > 0).all()


@given(profile=profiles(), seed=st.integers(min_value=0, max_value=999))
@settings(max_examples=10, deadline=None)
def test_lemma1_on_generated_programs(profile, seed):
    generated, compiled, binary = build(profile, P1111)
    events = emulate(
        generated.program, generated.streams, seed=seed, max_visits=400
    )
    itrace = TraceGenerator(binary, events).instruction_trace()
    dilated_binary = dilate_binary(binary, 2.0)
    dilated = TraceGenerator(dilated_binary, events).instruction_trace()
    for sets, assoc in ((16, 1), (8, 2)):
        big = simulate_trace(
            CacheConfig(sets, assoc, 32), dilated.starts, dilated.sizes
        )
        contracted = simulate_trace(
            CacheConfig(sets, assoc, 16), itrace.starts, itrace.sizes
        )
        assert big.misses == contracted.misses


@given(profile=profiles(), seed=st.integers(min_value=0, max_value=999))
@settings(max_examples=10, deadline=None)
def test_base_event_trace_processor_independent(profile, seed):
    generated, compiled_narrow, _ = build(profile, P1111)
    _, compiled_wide, _ = build(profile, P6332)
    narrow = emulate(
        generated.program,
        generated.streams,
        seed=seed,
        max_visits=300,
        compiled=compiled_narrow,
    )
    wide = emulate(
        generated.program,
        generated.streams,
        seed=seed,
        max_visits=300,
        compiled=compiled_wide,
    )
    assert narrow.blocks == wide.blocks
    assert np.array_equal(narrow.visit_blocks, wide.visit_blocks)
