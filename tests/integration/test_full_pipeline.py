"""Integration tests: the whole pipeline, cross-module consistency.

These tests stitch together workload generation, compilation, format
synthesis, linking, emulation, trace generation, simulation, the AHH
model and the dilation estimators — verifying the invariants that hold
*across* module boundaries.
"""

import numpy as np
import pytest

from repro.ahh.modeler import derive_trace_parameters
from repro.cache.config import CacheConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.machine.presets import P1111, P3221, P6332, TARGET_PROCESSORS
from repro.trace.stats import measured_unique_lines, summarize
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def pipeline():
    workload = load_benchmark("epic", scale=0.25)
    return ExperimentPipeline(
        workload, max_visits=8_000, i_granule=500, u_granule=2_000
    )


class TestTraceConsistency:
    def test_unified_is_instruction_plus_data(self, pipeline):
        art = pipeline.reference_artifacts()
        unified = art.unified_trace
        assert len(unified) == len(art.instruction_trace) + len(
            art.data_trace
        )
        assert np.array_equal(
            unified.instruction_component.starts,
            art.instruction_trace.starts,
        )
        assert np.array_equal(
            unified.data_component.starts, art.data_trace.starts
        )

    def test_instruction_addresses_within_text(self, pipeline):
        art = pipeline.reference_artifacts()
        itrace = art.instruction_trace
        assert int(itrace.starts.min()) >= art.binary.base
        ends = itrace.starts + itrace.sizes
        assert int(ends.max()) <= art.binary.text_end

    def test_trace_volume_scales_with_dilation_across_processors(
        self, pipeline
    ):
        """Wider processors' instruction traces carry ~d times the bytes."""
        ref_bytes = pipeline.reference_artifacts().instruction_trace.total_bytes
        for processor in (P3221, P6332):
            art = pipeline.artifacts(processor)
            dilation = pipeline.dilation(processor)
            ratio = art.instruction_trace.total_bytes / ref_bytes
            assert ratio == pytest.approx(dilation, rel=0.15)


class TestAhhAgainstMeasurement:
    def test_u_of_l_formula_tracks_measured_unique_lines(self, pipeline):
        """The AHH u(L) (per granule) must track the measured per-granule
        unique-line ratios across line sizes."""
        params = pipeline.trace_parameters().icache
        itrace = pipeline.reference_artifacts().instruction_trace
        measured = measured_unique_lines(itrace, [4, 8, 16, 32, 64])
        for line in (8, 16, 32, 64):
            measured_ratio = measured[line] / measured[4]
            model_ratio = params.unique_lines_bytes(
                line
            ) / params.unique_lines_bytes(4)
            # Whole-trace and per-granule ratios differ, but must agree
            # on the trend within a factor band.
            assert model_ratio == pytest.approx(measured_ratio, rel=0.6)

    def test_instruction_component_has_fewer_isolated_refs(self, pipeline):
        # Code is sequential within blocks, so isolated references are
        # rare; data mixes streaming and scattered accesses.  (epic's
        # sequential pixel streams make data *runs* long too, so lav is
        # not a reliable discriminator — p1 is.)
        params = pipeline.trace_parameters()
        assert params.unified_instr.p1 < params.unified_data.p1


class TestEstimationAgainstGroundTruth:
    CONFIGS = {
        "icache": CacheConfig.from_size(1024, 1, 32),
        "unified": CacheConfig.from_size(16 * 1024, 2, 64),
    }

    @pytest.mark.parametrize("processor", TARGET_PROCESSORS, ids=str)
    def test_icache_estimate_within_factor_two_of_actual(
        self, pipeline, processor
    ):
        config = self.CONFIGS["icache"]
        dilation = pipeline.dilation(processor)
        actual = pipeline.actual_misses(processor, "icache", [config])[
            config
        ]
        estimated = pipeline.estimated_misses(dilation, "icache", [config])[
            config
        ]
        assert 0.5 < estimated / actual < 2.0

    def test_normalized_misses_grow_with_width(self, pipeline):
        config = self.CONFIGS["icache"]
        ref = pipeline.actual_misses(P1111, "icache", [config])[config]
        previous = 0.9  # the 1111 point is 1.0 by construction
        for processor in TARGET_PROCESSORS:
            actual = pipeline.actual_misses(processor, "icache", [config])[
                config
            ]
            normalized = actual / ref
            assert normalized > previous * 0.85  # broadly increasing
            previous = max(previous, normalized)
        assert previous > 1.5  # the width effect is material

    def test_estimates_use_no_target_simulation(self, pipeline):
        """The estimator must be answerable from reference passes alone:
        a fresh pipeline that never built target artifacts can still
        estimate, given only the externally supplied dilation."""
        fresh = ExperimentPipeline(
            pipeline.workload, max_visits=8_000, i_granule=500,
            u_granule=2_000,
        )
        config = self.CONFIGS["unified"]
        value = fresh.estimated_misses(2.3, "unified", [config])[config]
        assert value > 0
        assert set(fresh._artifacts) == {"1111"}  # only the reference


class TestTraceSummaries:
    def test_summaries_are_sane(self, pipeline):
        art = pipeline.reference_artifacts()
        code = summarize(art.instruction_trace)
        data = summarize(art.data_trace)
        assert code.reuse_factor > 2  # loops revisit code
        assert code.footprint_bytes <= art.binary.text_size
        assert data.unique_words > 0
