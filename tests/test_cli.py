"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--scale", "0.12", "--visits", "2000", "--benchmarks", "epic"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_exist(self):
        parser = build_parser()
        for command in (
            "table2",
            "table3",
            "table4",
            "fig5",
            "fig6",
            "fig7",
            "dilation",
            "explore",
            "benchmarks",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_common_options_per_subcommand(self):
        args = build_parser().parse_args(
            ["dilation", "--scale", "0.5", "--visits", "123"]
        )
        assert args.scale == 0.5
        assert args.visits == 123


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "085.gcc" in out and "unepic" in out

    def test_dilation(self, capsys):
        assert main(["dilation", *FAST]) == 0
        out = capsys.readouterr().out
        assert "epic" in out
        assert "6332=" in out

    def test_table3(self, capsys):
        assert main(["table3", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Text Dilation" in out

    def test_table2(self, capsys):
        assert main(["table2", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Relative Data Cache Miss Rates" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit, match="unknown benchmarks"):
            main(["dilation", "--benchmarks", "176.gcc"])

    def test_report_from_results_dir(self, capsys, tmp_path):
        (tmp_path / "table3.txt").write_text("Text Dilation\n")
        assert main(["report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Reproduction run report" in out
        assert "Text Dilation" in out

    def test_report_to_file(self, capsys, tmp_path):
        (tmp_path / "table3.txt").write_text("Text Dilation\n")
        output = tmp_path / "report.md"
        assert main(
            ["report", "--results", str(tmp_path), "--output", str(output)]
        ) == 0
        assert output.exists()
        assert "written to" in capsys.readouterr().out

    def test_errors_command(self, capsys):
        assert main(["errors", *FAST]) == 0
        out = capsys.readouterr().out
        assert "estimated/icache" in out
        assert "median" in out


class TestMaxWorkers:
    def test_parser_accepts_max_workers(self):
        args = build_parser().parse_args(
            ["explore", "--max-workers", "2"]
        )
        assert args.max_workers == 2
        # Sweep commands share the common options.
        args = build_parser().parse_args(["table2", "--max-workers", "3"])
        assert args.max_workers == 3

    def test_default_is_serial(self):
        assert build_parser().parse_args(["explore"]).max_workers is None

    def test_settings_carry_max_workers(self):
        from repro.cli import _settings

        args = build_parser().parse_args(
            ["table2", "--max-workers", "4"]
        )
        assert _settings(args).max_workers == 4

    def test_explore_runs_with_max_workers(
        self, capsys, monkeypatch, tiny_pipeline
    ):
        """The explore command reaches the parallel-priming path."""
        import repro.cli as cli
        from repro.explore.spec import (
            CacheDesignSpace,
            ProcessorDesignSpace,
            SystemDesignSpace,
        )

        space = SystemDesignSpace(
            processors=ProcessorDesignSpace(
                int_units=(1, 2), float_units=(1,), memory_units=(1,),
                branch_units=(1,),
            ),
            icache=CacheDesignSpace(
                sizes_kb=(0.5, 1), assocs=(1,), line_sizes=(16, 32)
            ),
            dcache=CacheDesignSpace(
                sizes_kb=(0.5, 1), assocs=(1,), line_sizes=(16,)
            ),
            unified=CacheDesignSpace(
                sizes_kb=(8,), assocs=(2,), line_sizes=(32,)
            ),
        )
        monkeypatch.setattr(cli, "_explore_space", lambda: space)
        monkeypatch.setattr(
            cli, "get_pipeline", lambda bench, settings: tiny_pipeline
        )
        assert main(["explore", *FAST, "--max-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier for epic" in out
        assert "cost=" in out

    def test_table2_with_max_workers(self, capsys):
        """A sweep command accepts --max-workers end to end."""
        assert main(["table2", *FAST, "--max-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Relative Data Cache Miss Rates" in out

    @pytest.mark.parametrize("bad", ["0", "-1", "nope"])
    def test_non_positive_max_workers_rejected(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--max-workers", bad])
        err = capsys.readouterr().err
        assert "positive integer" in err or "invalid int" in err


class TestExecutorOptions:
    def test_timeout_and_retries_parse(self):
        args = build_parser().parse_args(
            ["table2", "--job-timeout", "1.5", "--job-retries", "3"]
        )
        assert args.job_timeout == 1.5
        assert args.job_retries == 3

    def test_settings_build_policy(self):
        from repro.cli import _settings

        args = build_parser().parse_args(
            ["table2", "--max-workers", "2", "--job-timeout", "9",
             "--job-retries", "1"]
        )
        policy = _settings(args).executor_policy()
        assert policy.max_workers == 2
        assert policy.timeout == 9
        assert policy.retries == 1


class TestExploreAllBenchmarks:
    def _patch_tiny(self, monkeypatch, tiny_pipeline):
        import repro.cli as cli
        from repro.explore.spec import (
            CacheDesignSpace,
            ProcessorDesignSpace,
            SystemDesignSpace,
        )

        space = SystemDesignSpace(
            processors=ProcessorDesignSpace(
                int_units=(1,), float_units=(1,), memory_units=(1,),
                branch_units=(1,),
            ),
            icache=CacheDesignSpace(
                sizes_kb=(0.5,), assocs=(1,), line_sizes=(16,)
            ),
            dcache=CacheDesignSpace(
                sizes_kb=(0.5,), assocs=(1,), line_sizes=(16,)
            ),
            unified=CacheDesignSpace(
                sizes_kb=(8,), assocs=(2,), line_sizes=(32,)
            ),
        )
        monkeypatch.setattr(cli, "_explore_space", lambda: space)
        monkeypatch.setattr(
            cli, "get_pipeline", lambda bench, settings: tiny_pipeline
        )

    def test_explore_walks_every_requested_benchmark(
        self, capsys, monkeypatch, tiny_pipeline
    ):
        """Regression: explore used to evaluate only the first benchmark."""
        self._patch_tiny(monkeypatch, tiny_pipeline)
        assert main(
            ["explore", "--scale", "0.12", "--visits", "2000",
             "--benchmarks", "epic", "unepic"]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier for epic" in out
        assert "Pareto frontier for unepic" in out


class TestJournalFlag:
    def test_journal_file_written(self, capsys, tmp_path):
        from repro.experiments.runner import clear_pipeline_cache

        clear_pipeline_cache()  # force fresh simulation passes
        path = tmp_path / "journal.jsonl"
        assert main(["table2", *FAST, "--journal", str(path)]) == 0
        assert "[journal]" in capsys.readouterr().err
        from repro.runtime import RunJournal

        journal = RunJournal.load(path)
        events = {e["event"] for e in journal.events}
        assert "run_start" in events and "run_end" in events
        assert journal.select("pass")  # simulations were journaled

    def test_report_includes_journal_section(self, capsys, tmp_path):
        from repro.runtime import RunJournal

        with RunJournal(tmp_path / "journal.jsonl") as journal:
            journal.record("pass", role="sweep", wall_s=0.5, where="serial")
            journal.record("retry", key="32", attempt=0, error="boom")
        (tmp_path / "table3.txt").write_text("Text Dilation\n")
        assert main(
            ["report", "--results", str(tmp_path),
             "--journal", str(tmp_path / "journal.jsonl")]
        ) == 0
        out = capsys.readouterr().out
        assert "Run journal" in out
        assert "1 retries" in out
