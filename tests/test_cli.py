"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--scale", "0.12", "--visits", "2000", "--benchmarks", "epic"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_exist(self):
        parser = build_parser()
        for command in (
            "table2",
            "table3",
            "table4",
            "fig5",
            "fig6",
            "fig7",
            "dilation",
            "explore",
            "benchmarks",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_common_options_per_subcommand(self):
        args = build_parser().parse_args(
            ["dilation", "--scale", "0.5", "--visits", "123"]
        )
        assert args.scale == 0.5
        assert args.visits == 123


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "085.gcc" in out and "unepic" in out

    def test_dilation(self, capsys):
        assert main(["dilation", *FAST]) == 0
        out = capsys.readouterr().out
        assert "epic" in out
        assert "6332=" in out

    def test_table3(self, capsys):
        assert main(["table3", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Text Dilation" in out

    def test_table2(self, capsys):
        assert main(["table2", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Relative Data Cache Miss Rates" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit, match="unknown benchmarks"):
            main(["dilation", "--benchmarks", "176.gcc"])

    def test_report_from_results_dir(self, capsys, tmp_path):
        (tmp_path / "table3.txt").write_text("Text Dilation\n")
        assert main(["report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Reproduction run report" in out
        assert "Text Dilation" in out

    def test_report_to_file(self, capsys, tmp_path):
        (tmp_path / "table3.txt").write_text("Text Dilation\n")
        output = tmp_path / "report.md"
        assert main(
            ["report", "--results", str(tmp_path), "--output", str(output)]
        ) == 0
        assert output.exists()
        assert "written to" in capsys.readouterr().out

    def test_errors_command(self, capsys):
        assert main(["errors", *FAST]) == 0
        out = capsys.readouterr().out
        assert "estimated/icache" in out
        assert "median" in out
