"""Unit tests for repro.isa.validate."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa.operations import make_branch
from repro.isa.program import BasicBlock, ControlFlowEdge, Procedure, Program
from repro.isa.validate import validate_procedure, validate_program


def linear_proc(name="p", calls=None):
    return Procedure(
        name=name,
        blocks=[
            BasicBlock(0, [make_branch()], calls=list(calls or [])),
            BasicBlock(1, [make_branch()]),
        ],
        edges=[ControlFlowEdge(0, 1, 1.0)],
    )


class TestValidateProcedure:
    def test_valid_procedure_passes(self):
        validate_procedure(linear_proc())

    def test_no_blocks(self):
        with pytest.raises(ProgramStructureError, match="no blocks"):
            validate_procedure(Procedure(name="x"))

    def test_duplicate_block_ids(self):
        proc = Procedure(
            name="x", blocks=[BasicBlock(0), BasicBlock(0)], edges=[]
        )
        with pytest.raises(ProgramStructureError, match="duplicate"):
            validate_procedure(proc)

    def test_edge_to_missing_block(self):
        proc = Procedure(
            name="x",
            blocks=[BasicBlock(0), BasicBlock(1)],
            edges=[ControlFlowEdge(0, 7, 1.0)],
        )
        with pytest.raises(ProgramStructureError, match="missing block"):
            validate_procedure(proc)

    def test_probability_out_of_range(self):
        proc = Procedure(
            name="x",
            blocks=[BasicBlock(0), BasicBlock(1)],
            edges=[ControlFlowEdge(0, 1, 1.5)],
        )
        with pytest.raises(ProgramStructureError, match="probability"):
            validate_procedure(proc)

    def test_probabilities_must_sum_to_one(self):
        proc = Procedure(
            name="x",
            blocks=[BasicBlock(0), BasicBlock(1), BasicBlock(2)],
            edges=[
                ControlFlowEdge(0, 1, 0.5),
                ControlFlowEdge(0, 2, 0.2),
            ],
        )
        with pytest.raises(ProgramStructureError, match="sum to"):
            validate_procedure(proc)

    def test_no_return_block(self):
        proc = Procedure(
            name="x",
            blocks=[BasicBlock(0), BasicBlock(1)],
            edges=[
                ControlFlowEdge(0, 1, 1.0),
                ControlFlowEdge(1, 0, 1.0),
            ],
        )
        with pytest.raises(ProgramStructureError, match="no return block"):
            validate_procedure(proc)

    def test_unreachable_return(self):
        # Entry self-loops with probability 1; block 1 returns but is
        # unreachable.
        proc = Procedure(
            name="x",
            blocks=[BasicBlock(0), BasicBlock(1)],
            edges=[ControlFlowEdge(0, 0, 1.0)],
        )
        with pytest.raises(ProgramStructureError, match="reachable"):
            validate_procedure(proc)

    def test_unknown_callee_detected_with_program(self):
        prog = Program(name="t", entry="p")
        prog.add(linear_proc("p", calls=["ghost"]))
        with pytest.raises(ProgramStructureError, match="unknown procedure"):
            validate_program(prog)


class TestValidateProgram:
    def test_missing_entry(self):
        prog = Program(name="t", entry="nope")
        prog.add(linear_proc("p"))
        with pytest.raises(ProgramStructureError, match="entry"):
            validate_program(prog)

    def test_valid_program(self):
        prog = Program(name="t", entry="p")
        prog.add(linear_proc("p", calls=["q"]))
        prog.add(linear_proc("q"))
        validate_program(prog)

    def test_direct_recursion_rejected(self):
        prog = Program(name="t", entry="p")
        prog.add(linear_proc("p", calls=["p"]))
        with pytest.raises(ProgramStructureError, match="recursive"):
            validate_program(prog)

    def test_mutual_recursion_rejected(self):
        prog = Program(name="t", entry="a")
        prog.add(linear_proc("a", calls=["b"]))
        prog.add(linear_proc("b", calls=["a"]))
        with pytest.raises(ProgramStructureError, match="recursive"):
            validate_program(prog)
