"""Unit tests for repro.isa.program."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa.operations import make_branch, make_int, make_load
from repro.isa.program import BasicBlock, ControlFlowEdge, Procedure, Program


def two_block_proc(name="p"):
    return Procedure(
        name=name,
        blocks=[
            BasicBlock(0, [make_int(0), make_branch()]),
            BasicBlock(1, [make_branch()]),
        ],
        edges=[ControlFlowEdge(0, 1, 1.0)],
    )


class TestBasicBlock:
    def test_counts_and_memory_filter(self):
        blk = BasicBlock(0, [make_int(0), make_load(1), make_branch()])
        assert blk.num_operations == 3
        assert [op.is_load for op in blk.memory_operations()] == [True]


class TestProcedure:
    def test_entry_is_first_block(self):
        proc = two_block_proc()
        assert proc.entry.block_id == 0

    def test_entry_of_empty_procedure_raises(self):
        with pytest.raises(ProgramStructureError, match="no blocks"):
            Procedure(name="empty").entry

    def test_block_lookup(self):
        proc = two_block_proc()
        assert proc.block(1).block_id == 1
        with pytest.raises(ProgramStructureError, match="no block 9"):
            proc.block(9)

    def test_successors_cached_and_invalidated(self):
        proc = two_block_proc()
        assert [e.dst for e in proc.successors(0)] == [1]
        proc.edges.append(ControlFlowEdge(1, 0, 1.0))
        # Stale without invalidation...
        assert proc.successors(1) == []
        proc.invalidate_cfg_cache()
        assert [e.dst for e in proc.successors(1)] == [0]

    def test_num_operations(self):
        assert two_block_proc().num_operations == 3


class TestProgram:
    def test_add_and_lookup(self):
        prog = Program(name="t", entry="p")
        prog.add(two_block_proc())
        assert prog.procedure("p").name == "p"
        assert prog.entry_procedure.name == "p"

    def test_duplicate_procedure_rejected(self):
        prog = Program(name="t")
        prog.add(two_block_proc())
        with pytest.raises(ProgramStructureError, match="duplicate"):
            prog.add(two_block_proc())

    def test_missing_procedure_raises(self):
        prog = Program(name="t")
        with pytest.raises(ProgramStructureError, match="no procedure"):
            prog.procedure("ghost")

    def test_all_blocks_and_counts(self):
        prog = Program(name="t", entry="a")
        prog.add(two_block_proc("a"))
        prog.add(two_block_proc("b"))
        keys = [(name, blk.block_id) for name, blk in prog.all_blocks()]
        assert keys == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]
        assert prog.num_blocks == 4
        assert prog.num_operations == 6
