"""Unit tests for repro.isa.operations."""

import pytest

from repro.isa.operations import (
    OP_CLASSES,
    OpClass,
    Operation,
    make_branch,
    make_float,
    make_int,
    make_load,
    make_store,
)


class TestOpClass:
    def test_four_classes_in_digit_order(self):
        assert OP_CLASSES == (
            OpClass.INT,
            OpClass.FLOAT,
            OpClass.MEMORY,
            OpClass.BRANCH,
        )

    def test_short_mnemonics(self):
        assert [c.short for c in OP_CLASSES] == ["I", "F", "M", "B"]


class TestOperation:
    def test_load_requires_memory_class(self):
        with pytest.raises(ValueError, match="MEMORY"):
            Operation(OpClass.INT, is_load=True)

    def test_store_requires_memory_class(self):
        with pytest.raises(ValueError, match="MEMORY"):
            Operation(OpClass.FLOAT, is_store=True)

    def test_load_and_store_mutually_exclusive(self):
        with pytest.raises(ValueError, match="both"):
            Operation(OpClass.MEMORY, is_load=True, is_store=True)

    def test_is_memory_and_is_branch(self):
        assert make_load(0).is_memory
        assert not make_load(0).is_branch
        assert make_branch().is_branch
        assert not make_int(0).is_memory

    def test_operations_are_hashable_and_frozen(self):
        op = make_int(3, (1, 2))
        assert op in {op}
        with pytest.raises(AttributeError):
            op.dests = (9,)  # type: ignore[misc]


class TestConstructors:
    def test_make_int_wires_registers(self):
        op = make_int(7, (1, 2))
        assert op.opclass is OpClass.INT
        assert op.dests == (7,)
        assert op.srcs == (1, 2)

    def test_make_float(self):
        op = make_float(4)
        assert op.opclass is OpClass.FLOAT
        assert op.dests == (4,)

    def test_make_load_carries_stream(self):
        op = make_load(2, addr_src=9, stream=3)
        assert op.is_load and not op.is_store
        assert op.stream == 3
        assert op.srcs == (9,)

    def test_make_store_sources(self):
        op = make_store(value_src=5, addr_src=6, stream=1)
        assert op.is_store and not op.is_load
        assert op.srcs == (5, 6)
        assert op.dests == ()

    def test_mnemonics(self):
        assert make_load(0).mnemonic() == "LD"
        assert make_store(0).mnemonic() == "ST"
        assert make_int(0).mnemonic() == "ADD"
        assert make_float(0).mnemonic() == "FADD"
        assert make_branch().mnemonic() == "BR"
