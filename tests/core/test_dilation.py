"""Unit tests for repro.core.dilation."""

import numpy as np
import pytest

from repro.core.dilation import (
    cumulative_distribution,
    measure_dilation,
)
from repro.errors import ModelError
from repro.iformat.linker import Binary, BlockImage


def make_binary(name, proc_sizes, base=0x10000):
    """proc_sizes: list of (proc, block_id, size)."""
    binary = Binary(program_name=name, processor_name="x", base=base)
    cursor = base
    for proc, block_id, size in proc_sizes:
        binary.add(BlockImage(proc, block_id, cursor, size))
        cursor += size
    return binary


class TestMeasureDilation:
    def test_text_and_block_ratios(self):
        ref = make_binary("app", [("m", 0, 100), ("m", 1, 100)])
        target = make_binary("app", [("m", 0, 150), ("m", 1, 250)])
        info = measure_dilation(ref, target)
        assert info.text_dilation == pytest.approx(2.0)
        assert info.block_dilations.tolist() == [1.5, 2.5]
        assert info.mean_block_dilation == pytest.approx(2.0)

    def test_program_mismatch_rejected(self):
        ref = make_binary("a", [("m", 0, 100)])
        target = make_binary("b", [("m", 0, 100)])
        with pytest.raises(ModelError, match="different programs"):
            measure_dilation(ref, target)

    def test_empty_reference_rejected(self):
        ref = Binary(program_name="a", processor_name="x", base=0)
        target = make_binary("a", [("m", 0, 100)])
        with pytest.raises(ModelError, match="no text"):
            measure_dilation(ref, target)

    def test_uniform_dilation_gives_step_distribution(self):
        ref = make_binary("app", [("m", i, 64) for i in range(10)])
        target = make_binary("app", [("m", i, 128) for i in range(10)])
        info = measure_dilation(ref, target)
        thresholds = np.array([1.0, 1.99, 2.0, 3.0])
        static = info.static_distribution(thresholds)
        assert static.tolist() == [0.0, 0.0, 1.0, 1.0]


class TestCumulativeDistribution:
    def test_unweighted(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        cdf = cumulative_distribution(values, None, np.array([0.5, 2.5, 9.0]))
        assert cdf.tolist() == [0.0, 0.5, 1.0]

    def test_weighted(self):
        values = np.array([1.0, 3.0])
        weights = np.array([3.0, 1.0])
        cdf = cumulative_distribution(values, weights, np.array([2.0]))
        assert cdf.tolist() == [0.75]

    def test_threshold_inclusive(self):
        values = np.array([2.0])
        cdf = cumulative_distribution(values, None, np.array([2.0]))
        assert cdf.tolist() == [1.0]

    def test_zero_weights_rejected(self):
        with pytest.raises(ModelError, match="zero"):
            cumulative_distribution(
                np.array([1.0]), np.array([0.0]), np.array([1.0])
            )

    def test_dynamic_distribution_with_mapping(self):
        ref = make_binary("app", [("m", 0, 100), ("m", 1, 100)])
        target = make_binary("app", [("m", 0, 100), ("m", 1, 300)])
        info = measure_dilation(ref, target)
        # Hot block 0 has dilation 1.0; cold block 1 has 3.0.
        cdf = info.dynamic_distribution(
            {("m", 0): 99, ("m", 1): 1}, np.array([2.0])
        )
        assert cdf.tolist() == [0.99]
