"""Unit tests for repro.core.ports."""

import pytest

from repro.core.ports import block_port_stalls, port_stall_cycles
from repro.errors import ConfigurationError
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P6332
from repro.trace.emulator import emulate
from repro.vliwcomp.compile import compile_program


class TestBlockPortStalls:
    def test_enough_ports_is_free(self):
        assert block_port_stalls(6, 3, 3) == 0
        assert block_port_stalls(6, 3, 8) == 0

    def test_single_port_serializes(self):
        # 6 mem ops, 3 units: schedule assumed 2 cycles; 1 port needs 6.
        assert block_port_stalls(6, 3, 1) == 4

    def test_two_ports(self):
        assert block_port_stalls(6, 3, 2) == 1  # ceil(6/2)=3 vs 2

    def test_no_memory_ops(self):
        assert block_port_stalls(0, 3, 1) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="ports"):
            block_port_stalls(1, 1, 0)
        with pytest.raises(ConfigurationError, match="memory_units"):
            block_port_stalls(1, 0, 1)


class TestPortStallCycles:
    @pytest.fixture(scope="class")
    def wide_run(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P6332))
        events = emulate(
            tiny.program, tiny.streams, seed=2, max_visits=1200,
            compiled=compiled,
        )
        return compiled, events

    def test_full_porting_is_free(self, wide_run):
        compiled, events = wide_run
        assert port_stall_cycles(compiled, events, ports=3) == 0

    def test_single_port_costs(self, wide_run):
        compiled, events = wide_run
        stalls = port_stall_cycles(compiled, events, ports=1)
        assert stalls > 0

    def test_monotone_in_ports(self, wide_run):
        compiled, events = wide_run
        values = [
            port_stall_cycles(compiled, events, ports=p) for p in (1, 2, 3)
        ]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 0

    def test_narrow_machine_single_port_free(self, tiny):
        # One memory unit: a single-ported cache matches the schedule.
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        events = emulate(
            tiny.program, tiny.streams, seed=2, max_visits=800,
            compiled=compiled,
        )
        assert port_stall_cycles(compiled, events, ports=1) == 0
