"""Unit tests for repro.core.dilated_trace."""

import pytest

from repro.cache.config import WORD_BYTES
from repro.core.dilated_trace import dilate_binary
from repro.errors import ModelError
from repro.iformat.linker import Binary, BlockImage


def make_binary(sizes, base=0x10000, gap=0):
    binary = Binary(program_name="app", processor_name="ref", base=base)
    cursor = base
    for index, size in enumerate(sizes):
        binary.add(BlockImage("m", index, cursor, size))
        cursor += size + gap
    return binary


class TestDilateBinary:
    def test_identity_at_dilation_one(self):
        binary = make_binary([64, 32, 128])
        dilated = dilate_binary(binary, 1.0)
        for ref, dil in zip(binary.images, dilated.images):
            assert (dil.start, dil.size) == (ref.start, ref.size)

    def test_integer_dilation_scales_offsets_exactly(self):
        binary = make_binary([64, 32, 128])
        dilated = dilate_binary(binary, 2.0)
        base = binary.base
        for ref, dil in zip(binary.images, dilated.images):
            assert dil.start - base == 2 * (ref.start - base)
            assert dil.size == 2 * ref.size

    def test_no_overlap_after_fractional_dilation(self):
        binary = make_binary([20, 24, 36, 16, 100, 8])
        for dilation in (1.1, 1.37, 2.6, 3.9):
            dilated = dilate_binary(binary, dilation)
            images = sorted(dilated.images, key=lambda im: im.start)
            for a, b in zip(images, images[1:]):
                assert a.end <= b.start

    def test_word_rounding(self):
        binary = make_binary([20, 24])
        dilated = dilate_binary(binary, 1.3)
        for image in dilated.images:
            assert image.start % WORD_BYTES == 0
            assert image.size % WORD_BYTES == 0

    def test_contiguous_blocks_stay_contiguous(self):
        # Adjacent blocks with no gaps: after dilation, gaps stay within
        # one word of zero (paper: "contiguous basic blocks in the
        # original trace remain contiguous but do not overlap").
        binary = make_binary([16, 16, 16, 16], gap=0)
        dilated = dilate_binary(binary, 1.7)
        images = sorted(dilated.images, key=lambda im: im.start)
        for a, b in zip(images, images[1:]):
            assert 0 <= b.start - a.end <= WORD_BYTES

    def test_text_size_scales_roughly_with_dilation(self):
        binary = make_binary([64, 32, 128, 16, 48])
        dilated = dilate_binary(binary, 2.5)
        assert dilated.text_size == pytest.approx(
            2.5 * binary.text_size, rel=0.05
        )

    def test_minimum_block_size_is_one_word(self):
        binary = make_binary([4, 4])
        dilated = dilate_binary(binary, 1.01)
        assert all(im.size >= WORD_BYTES for im in dilated.images)

    def test_non_positive_dilation_rejected(self):
        with pytest.raises(ModelError, match="positive"):
            dilate_binary(make_binary([16]), 0.0)

    def test_processor_name_annotated(self):
        dilated = dilate_binary(make_binary([16]), 2.0)
        assert "d=2" in dilated.processor_name
