"""Unit tests for repro.core.hierarchy_eval."""

import pytest

from repro.core.hierarchy_eval import (
    MissPenalties,
    SystemEvaluation,
    evaluate_system,
    processor_cycles,
)
from repro.errors import ConfigurationError
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P6332
from repro.trace.emulator import emulate
from repro.vliwcomp.compile import compile_program


class TestMissPenalties:
    def test_defaults(self):
        penalties = MissPenalties()
        assert penalties.l2_miss > penalties.l1_miss > 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MissPenalties(l1_miss=-1)


class TestSystemEvaluation:
    def test_total_cycles(self):
        evaluation = SystemEvaluation(
            processor_cycles=1000,
            icache_stalls=100.0,
            dcache_stalls=50.0,
            unified_stalls=250.0,
        )
        assert evaluation.total_cycles == 1400.0
        assert evaluation.memory_stall_fraction == pytest.approx(400 / 1400)

    def test_zero_cycles(self):
        evaluation = SystemEvaluation(0, 0.0, 0.0, 0.0)
        assert evaluation.memory_stall_fraction == 0.0


class TestProcessorCycles:
    def test_weighted_by_visit_counts(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=400)
        total = processor_cycles(compiled, events)
        # Recompute by hand.
        expected = 0
        for proc_name, block_id, _ in events.iter_visits():
            expected += compiled.block(proc_name, block_id).issue_cycles
        assert total == expected
        assert total > 0

    def test_wider_processor_fewer_cycles_dynamic(self, tiny):
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=400)
        from repro.machine.processor import make_processor

        narrow = compile_program(
            tiny.program,
            MachineDescription(make_processor(1, 1, 1, 1, has_speculation=False)),
        )
        wide = compile_program(
            tiny.program,
            MachineDescription(make_processor(6, 3, 3, 2, has_speculation=False)),
        )
        assert processor_cycles(wide, events) < processor_cycles(
            narrow, events
        )


class TestEvaluateSystem:
    def test_stall_accounting(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=200)
        evaluation = evaluate_system(
            compiled,
            events,
            icache_misses=10,
            dcache_misses=20,
            unified_misses=5,
            penalties=MissPenalties(l1_miss=10, l2_miss=100),
        )
        assert evaluation.icache_stalls == 100
        assert evaluation.dcache_stalls == 200
        assert evaluation.unified_stalls == 500
        assert evaluation.total_cycles == (
            evaluation.processor_cycles + 800
        )
