"""Lemma 1: dilating the trace by d == contracting the line size by d.

The paper proves M(IC(S,A,L), Pref, d) = M(IC(S,A,L/d), Pref) when L/d is
a feasible line size.  We verify it end-to-end: simulate the dilated
instruction trace of a real workload on C(S,A,L) and the undilated trace
on C(S,A,L/d) and require equal miss counts.

Exactness requires the lemma's own preconditions: block starts stay at
B + d*O without rounding (so integer d) and blocks map to sets
identically.  For fractional d, rounding perturbs placements and the
counts are only close; we check both regimes.
"""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.core.dilated_trace import dilate_binary
from repro.trace.generator import TraceGenerator


@pytest.fixture(scope="module")
def reference(tiny_pipeline_module):
    return tiny_pipeline_module.reference_artifacts()


@pytest.fixture(scope="module")
def tiny_pipeline_module():
    from repro.experiments.pipeline import ExperimentPipeline
    from repro.workloads.suite import tiny_workload

    return ExperimentPipeline(
        tiny_workload(), max_visits=3_000, i_granule=200, u_granule=800
    )


def dilated_itrace(reference, dilation):
    dilated = dilate_binary(reference.binary, dilation)
    return TraceGenerator(dilated, reference.events).instruction_trace()


class TestLemma1Exact:
    @pytest.mark.parametrize("dilation", [2, 4])
    @pytest.mark.parametrize("sets,assoc", [(32, 1), (64, 2), (16, 4)])
    def test_power_of_two_dilation_is_exact(
        self, reference, dilation, sets, assoc
    ):
        line = 32
        dilated = dilated_itrace(reference, float(dilation))
        big = simulate_trace(
            CacheConfig(sets, assoc, line), dilated.starts, dilated.sizes
        )
        ref_trace = reference.instruction_trace
        contracted = simulate_trace(
            CacheConfig(sets, assoc, line // dilation),
            ref_trace.starts,
            ref_trace.sizes,
        )
        assert big.misses == contracted.misses

    def test_dilation_one_is_reference(self, reference):
        dilated = dilated_itrace(reference, 1.0)
        ref_trace = reference.instruction_trace
        config = CacheConfig(32, 1, 32)
        assert (
            simulate_trace(config, dilated.starts, dilated.sizes).misses
            == simulate_trace(
                config, ref_trace.starts, ref_trace.sizes
            ).misses
        )


class TestLemma1Approximate:
    def test_fractional_dilation_is_close_to_interpolated_regime(
        self, reference
    ):
        """For L/d between two feasible sizes, dilated misses land between
        (or near) the bracketing contracted-line simulations."""
        config = CacheConfig(128, 2, 32)
        ref_trace = reference.instruction_trace
        lower = simulate_trace(
            CacheConfig(128, 2, 8), ref_trace.starts, ref_trace.sizes
        ).misses
        upper = simulate_trace(
            CacheConfig(128, 2, 16), ref_trace.starts, ref_trace.sizes
        ).misses
        dilated = dilated_itrace(reference, 3.0)  # 32/3 ~ 10.7 in (8, 16)
        observed = simulate_trace(
            config, dilated.starts, dilated.sizes
        ).misses
        low, high = sorted((lower, upper))
        slack = 0.25 * max(high, 1)
        assert low - slack <= observed <= high + slack
