"""Unit tests for repro.core.estimator."""

import pytest

from repro.ahh.params import ComponentParameters, TraceParameters
from repro.cache.config import CacheConfig
from repro.core.estimator import DilationEstimator, _bracket_line_sizes
from repro.errors import ModelError


def make_params():
    return TraceParameters(
        icache=ComponentParameters(400.0, 0.05, 12.0, granule_size=2000),
        unified_instr=ComponentParameters(900.0, 0.05, 12.0, granule_size=20000),
        unified_data=ComponentParameters(600.0, 0.4, 2.5, granule_size=20000),
    )


@pytest.fixture
def estimator():
    return DilationEstimator(make_params())


class TestBracketing:
    def test_exact_power_of_two(self):
        assert _bracket_line_sizes(16.0) == (16, 16)

    def test_between_powers(self):
        assert _bracket_line_sizes(10.7) == (8, 16)
        assert _bracket_line_sizes(5.0) == (4, 8)

    def test_clamped_at_word(self):
        assert _bracket_line_sizes(2.0) == (4, 4)

    def test_ulp_off_power_of_two_snaps(self):
        """Float division landing ulps off a power of two must still take
        the exact Lemma 1 path (regression: dilation 2.0000000000000004
        used to misbracket 32/d into the (8, 16) interpolation)."""
        effective = 32 / 2.0000000000000004  # 15.999999999999996
        assert effective != 16.0
        assert _bracket_line_sizes(effective) == (16, 16)
        # A few ulps above a power of two snaps down to it as well.
        assert _bracket_line_sizes(16.000000000000004) == (16, 16)

    def test_ulp_snap_gives_exact_icache_lookup(self, estimator):
        config = CacheConfig(64, 1, 32)
        reference = {CacheConfig(64, 1, 16): 5000.0}
        value = estimator.estimate_icache_misses(
            config, 2.0000000000000004, reference
        )
        assert value == 5000.0

    def test_far_from_power_still_brackets(self):
        assert _bracket_line_sizes(16.1) == (16, 32)
        assert _bracket_line_sizes(15.9) == (8, 16)


class TestDcache:
    def test_identity(self, estimator):
        assert estimator.estimate_dcache_misses(1234) == 1234.0


class TestIcache:
    def test_power_of_two_dilation_is_exact_lookup(self, estimator):
        config = CacheConfig(64, 1, 32)
        reference = {CacheConfig(64, 1, 16): 5000.0}
        assert (
            estimator.estimate_icache_misses(config, 2.0, reference) == 5000.0
        )

    def test_interpolation_lies_between_brackets(self, estimator):
        config = CacheConfig(64, 1, 32)
        reference = {
            CacheConfig(64, 1, 8): 9000.0,
            CacheConfig(64, 1, 16): 6000.0,
        }
        value = estimator.estimate_icache_misses(config, 3.0, reference)
        assert 6000.0 <= value <= 9000.0

    def test_interpolation_endpoint_continuity(self, estimator):
        """As d -> L/Ll, the interpolated estimate approaches the exact
        lookup at the bracketing line size."""
        config = CacheConfig(64, 1, 32)
        reference = {
            CacheConfig(64, 1, 8): 9000.0,
            CacheConfig(64, 1, 16): 6000.0,
        }
        near_two = estimator.estimate_icache_misses(
            config, 2.0001, reference
        )
        assert near_two == pytest.approx(6000.0, rel=0.01)

    def test_missing_reference_config_raises(self, estimator):
        config = CacheConfig(64, 1, 32)
        with pytest.raises(ModelError, match="lack"):
            estimator.estimate_icache_misses(config, 3.0, {})

    def test_required_configs_listed(self, estimator):
        config = CacheConfig(64, 1, 32)
        assert estimator.required_icache_configs(config, 2.0) == [
            CacheConfig(64, 1, 16)
        ]
        assert estimator.required_icache_configs(config, 3.0) == [
            CacheConfig(64, 1, 8),
            CacheConfig(64, 1, 16),
        ]

    def test_ports_normalized_in_lookups(self, estimator):
        config = CacheConfig(64, 1, 32, ports=2)
        reference = {CacheConfig(64, 1, 16): 5000.0}  # ports=1 key
        assert (
            estimator.estimate_icache_misses(config, 2.0, reference) == 5000.0
        )

    def test_huge_dilation_clamps_to_word_line(self, estimator):
        config = CacheConfig(64, 1, 32)
        reference = {CacheConfig(64, 1, 4): 20000.0}
        value = estimator.estimate_icache_misses(config, 100.0, reference)
        assert value == 20000.0

    def test_non_positive_dilation_rejected(self, estimator):
        with pytest.raises(ModelError, match="dilation"):
            estimator.estimate_icache_misses(CacheConfig(64, 1, 32), 0, {})

    def test_estimate_never_negative(self, estimator):
        config = CacheConfig(64, 1, 32)
        # Pathological reference values that would extrapolate negative.
        reference = {
            CacheConfig(64, 1, 8): 1.0,
            CacheConfig(64, 1, 16): 5000.0,
        }
        value = estimator.estimate_icache_misses(config, 3.0, reference)
        assert value >= 0.0


class TestUnified:
    def test_dilation_one_is_identity(self, estimator):
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        assert (
            estimator.estimate_unified_misses(config, 1.0, 7777.0) == 7777.0
        )

    def test_dilation_scales_misses_up(self, estimator):
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        base = estimator.estimate_unified_misses(config, 1.0, 10_000.0)
        dilated = estimator.estimate_unified_misses(config, 2.0, 10_000.0)
        assert dilated > base

    def test_monotone_in_dilation(self, estimator):
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        values = [
            estimator.estimate_unified_misses(config, d, 10_000.0)
            for d in (1.0, 1.5, 2.0, 3.0, 4.0)
        ]
        assert values == sorted(values)

    def test_collision_ratio_formula(self, estimator):
        config = CacheConfig.from_size(16 * 1024, 2, 64)
        coll_1 = estimator.unified_collisions(config, 1.0)
        coll_2 = estimator.unified_collisions(config, 2.0)
        expected = 10_000.0 * coll_2 / coll_1
        assert estimator.estimate_unified_misses(
            config, 2.0, 10_000.0
        ) == pytest.approx(expected)

    def test_non_positive_dilation_rejected(self, estimator):
        with pytest.raises(ModelError, match="dilation"):
            estimator.estimate_unified_misses(
                CacheConfig(64, 1, 32), -1.0, 1.0
            )


class TestBatchedEstimates:
    """The batched grid methods must match the scalar oracle."""

    DILATIONS = (1.0, 1.3, 2.0, 2.0000000000000004, 3.3, 100.0)

    def icache_configs(self):
        return [
            CacheConfig(sets, assoc, line)
            for sets in (16, 64)
            for assoc in (1, 2)
            for line in (16, 32)
        ]

    def test_icache_grid_matches_scalar(self, estimator):
        configs = self.icache_configs()
        reference = {
            c: 100.0 + 7.0 * c.line_size + c.sets / 3.0
            for c in estimator.required_icache_configs_batch(
                configs, self.DILATIONS
            )
        }
        grid = estimator.estimate_icache_misses_batch(
            configs, self.DILATIONS, reference
        )
        assert grid.shape == (len(configs), len(self.DILATIONS))
        for i, config in enumerate(configs):
            for j, dilation in enumerate(self.DILATIONS):
                scalar = estimator.estimate_icache_misses(
                    config, dilation, reference
                )
                assert grid[i, j] == pytest.approx(
                    scalar, rel=1e-9, abs=1e-9
                )

    def test_unified_grid_matches_scalar(self, estimator):
        configs = [
            CacheConfig.from_size(kb * 1024, assoc, 64)
            for kb in (16, 32)
            for assoc in (2, 4)
        ]
        reference = [1000.0 * (k + 1) for k in range(len(configs))]
        grid = estimator.estimate_unified_misses_batch(
            configs, self.DILATIONS, reference
        )
        for i, config in enumerate(configs):
            for j, dilation in enumerate(self.DILATIONS):
                scalar = estimator.estimate_unified_misses(
                    config, dilation, reference[i]
                )
                assert grid[i, j] == pytest.approx(
                    scalar, rel=1e-9, abs=1e-9
                )

    def test_required_configs_batch_is_union(self, estimator):
        configs = self.icache_configs()
        batch = estimator.required_icache_configs_batch(
            configs, self.DILATIONS
        )
        assert len(batch) == len(set(batch))
        union = {
            needed
            for c in configs
            for d in self.DILATIONS
            for needed in estimator.required_icache_configs(c, d)
        }
        assert set(batch) == union

    def test_batch_rejects_non_positive_dilations(self, estimator):
        configs = [CacheConfig(64, 1, 32)]
        with pytest.raises(ModelError, match="dilation"):
            estimator.estimate_icache_misses_batch(configs, [1.0, 0.0], {})
        with pytest.raises(ModelError, match="dilation"):
            estimator.estimate_unified_misses_batch(
                configs, [-1.0], [100.0]
            )

    def test_empty_grid(self, estimator):
        assert estimator.estimate_icache_misses_batch([], [1.0], {}).shape \
            == (0, 1)
        assert estimator.estimate_unified_misses_batch(
            [], [1.0], []
        ).shape == (0, 1)
