"""Unit tests for repro.core.interpolate (Lemma 2)."""

import pytest

from repro.core.interpolate import interpolate_linear_in
from repro.errors import ModelError


class TestInterpolateLinearIn:
    def test_recovers_endpoints(self):
        # Eq (4.12) note: "at the two end points ... the right hand side
        # evaluates to M(IC(S,A,Ll)) and M(IC(S,A,Lu)) respectively."
        f1, g1, f2, g2 = 10.0, 2.0, 30.0, 6.0
        assert interpolate_linear_in(f1, g1, f2, g2, g1) == pytest.approx(f1)
        assert interpolate_linear_in(f1, g1, f2, g2, g2) == pytest.approx(f2)

    def test_recovers_exact_line(self):
        # f(x) = 3 g(x) + 7.
        def f_of(g):
            return 3.0 * g + 7.0

        for g in (0.0, 1.5, 10.0, -4.0):
            assert interpolate_linear_in(
                f_of(2.0), 2.0, f_of(5.0), 5.0, g
            ) == pytest.approx(f_of(g))

    def test_extrapolation_beyond_samples(self):
        # The unified-cache path extrapolates; the line must extend.
        value = interpolate_linear_in(10.0, 1.0, 20.0, 2.0, 4.0)
        assert value == pytest.approx(40.0)

    def test_degenerate_equal_points_same_value(self):
        assert interpolate_linear_in(5.0, 3.0, 5.0, 3.0, 9.0) == 5.0

    def test_degenerate_equal_abscissae_different_values(self):
        with pytest.raises(ModelError, match="coincide"):
            interpolate_linear_in(5.0, 3.0, 6.0, 3.0, 9.0)
