"""Shared fixtures: tiny workloads and pipelines reused across test files."""

from __future__ import annotations

import pytest

from repro.experiments.pipeline import ExperimentPipeline
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P6332
from repro.workloads.suite import tiny_workload


@pytest.fixture(scope="session")
def tiny():
    """A small validated workload (program + streams)."""
    return tiny_workload()


@pytest.fixture(scope="session")
def tiny_pipeline(tiny):
    """Pipeline over the tiny workload with a small visit budget."""
    return ExperimentPipeline(tiny, max_visits=4_000, i_granule=200, u_granule=800)


@pytest.fixture(scope="session")
def mdes_narrow():
    return MachineDescription(P1111)


@pytest.fixture(scope="session")
def mdes_wide():
    return MachineDescription(P6332)
