"""Unit tests for repro.machine.processor."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.operations import OpClass
from repro.machine.processor import VliwProcessor, make_processor


class TestVliwProcessor:
    def test_issue_width_is_unit_sum(self):
        proc = make_processor(3, 2, 2, 1)
        assert proc.issue_width == 8

    def test_digit_name(self):
        assert make_processor(6, 3, 3, 2).digit_name == "6332"

    def test_default_name_matches_digits(self):
        assert make_processor(2, 1, 1, 1).name == "2111"

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            VliwProcessor(name="bad", units={
                OpClass.INT: 1,
                OpClass.FLOAT: 0,
                OpClass.MEMORY: 1,
                OpClass.BRANCH: 1,
            })

    def test_non_power_of_two_regfile_rejected(self):
        with pytest.raises(ConfigurationError, match="power of"):
            make_processor(1, 1, 1, 1, int_registers=33)

    def test_unit_count_accessor(self):
        proc = make_processor(4, 2, 2, 1)
        assert proc.unit_count(OpClass.INT) == 4
        assert proc.unit_count(OpClass.BRANCH) == 1

    def test_compatible_reference_needs_matching_features(self):
        ref = make_processor(1, 1, 1, 1)
        same = make_processor(6, 3, 3, 2)
        pred = make_processor(6, 3, 3, 2, has_predication=True)
        nospec = make_processor(6, 3, 3, 2, has_speculation=False)
        assert same.compatible_reference(ref)
        assert not pred.compatible_reference(ref)
        assert not nospec.compatible_reference(ref)


class TestRegfileScaling:
    def test_narrow_machine_keeps_32(self):
        assert make_processor(1, 1, 1, 1).int_registers == 32

    def test_scaling_is_monotone_in_width(self):
        widths = [
            make_processor(1, 1, 1, 1),
            make_processor(2, 1, 1, 1),
            make_processor(3, 2, 2, 1),
            make_processor(4, 2, 2, 1),
            make_processor(6, 3, 3, 2),
        ]
        sizes = [p.int_registers for p in widths]
        assert sizes == sorted(sizes)
        assert sizes[0] == 32
        assert sizes[-1] == 256

    def test_explicit_override_wins(self):
        proc = make_processor(6, 3, 3, 2, int_registers=64)
        assert proc.int_registers == 64
