"""Unit tests for repro.machine.accelerator."""

import pytest

from repro.core.hierarchy_eval import processor_cycles
from repro.errors import ConfigurationError
from repro.isa.operations import OpClass
from repro.machine.accelerator import (
    SystolicArray,
    accelerated_cycles,
    accelerator_cost,
)
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111
from repro.trace.emulator import emulate
from repro.vliwcomp.compile import compile_program


class TestSystolicArray:
    def test_geometry(self):
        array = SystolicArray("mac8x4", OpClass.FLOAT, rows=8, cols=4)
        assert array.processing_elements == 32
        assert array.pipeline_depth == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="dimensions"):
            SystolicArray("bad", OpClass.INT, rows=0)
        with pytest.raises(ConfigurationError, match="interval"):
            SystolicArray("bad", OpClass.INT, initiation_interval=0)
        with pytest.raises(ConfigurationError, match="fraction"):
            SystolicArray("bad", OpClass.INT, offload_fraction=1.5)


class TestCost:
    def test_scales_with_pe_count(self):
        small = SystolicArray("s", OpClass.INT, rows=2, cols=2)
        big = SystolicArray("b", OpClass.INT, rows=8, cols=8)
        assert accelerator_cost(big) > accelerator_cost(small) > 0

    def test_float_arrays_cost_more(self):
        int_array = SystolicArray("i", OpClass.INT, rows=4, cols=4)
        fp_array = SystolicArray("f", OpClass.FLOAT, rows=4, cols=4)
        assert accelerator_cost(fp_array) > accelerator_cost(int_array)


class TestAcceleratedCycles:
    @pytest.fixture(scope="class")
    def workload_run(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        events = emulate(
            tiny.program, tiny.streams, seed=1, max_visits=1500,
            compiled=compiled,
        )
        return compiled, events

    def test_zero_offload_matches_plain_cycles(self, workload_run):
        compiled, events = workload_run
        array = SystolicArray(
            "noop", OpClass.INT, offload_fraction=0.0
        )
        assert accelerated_cycles(compiled, events, array) == (
            processor_cycles(compiled, events)
        )

    def test_offload_reduces_cycles(self, workload_run):
        compiled, events = workload_run
        array = SystolicArray(
            "int16", OpClass.INT, rows=4, cols=4, offload_fraction=0.6
        )
        accelerated = accelerated_cycles(compiled, events, array)
        plain = processor_cycles(compiled, events)
        assert accelerated < plain

    def test_never_slower_than_plain(self, workload_run):
        """The mapper keeps losing blocks on the processor, so any array
        configuration is at worst neutral."""
        compiled, events = workload_run
        plain = processor_cycles(compiled, events)
        for fraction in (0.3, 0.6, 0.9):
            for rows, cols, ii in ((1, 1, 8), (2, 2, 1), (8, 8, 1)):
                array = SystolicArray(
                    "a",
                    OpClass.INT,
                    rows=rows,
                    cols=cols,
                    initiation_interval=ii,
                    offload_fraction=fraction,
                )
                assert accelerated_cycles(compiled, events, array) <= plain

    def test_tiny_array_can_bottleneck(self, workload_run):
        """A 1x1 array with a slow initiation interval caps the win."""
        compiled, events = workload_run
        tiny_array = SystolicArray(
            "slow", OpClass.INT, rows=1, cols=1,
            initiation_interval=8, offload_fraction=0.9,
        )
        big_array = SystolicArray(
            "fast", OpClass.INT, rows=8, cols=8, offload_fraction=0.9
        )
        assert accelerated_cycles(
            compiled, events, tiny_array
        ) >= accelerated_cycles(compiled, events, big_array)
