"""Unit tests for repro.machine.presets."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.presets import (
    P1111,
    P6332,
    PAPER_PROCESSORS,
    REFERENCE_PROCESSOR,
    TARGET_PROCESSORS,
    processor_from_name,
)


class TestPresets:
    def test_paper_roster(self):
        assert [p.name for p in PAPER_PROCESSORS] == [
            "1111",
            "2111",
            "3221",
            "4221",
            "6332",
        ]

    def test_reference_is_narrow(self):
        assert REFERENCE_PROCESSOR is P1111
        assert REFERENCE_PROCESSOR.issue_width == 4

    def test_paper_issue_widths(self):
        # Section 6: "up to 4, 5, 8, 9, and 14 operations per cycle".
        assert [p.issue_width for p in PAPER_PROCESSORS] == [4, 5, 8, 9, 14]

    def test_targets_exclude_reference(self):
        assert REFERENCE_PROCESSOR not in TARGET_PROCESSORS

    def test_all_targets_share_reference_features(self):
        for target in TARGET_PROCESSORS:
            assert target.compatible_reference(REFERENCE_PROCESSOR)


class TestProcessorFromName:
    def test_round_trip(self):
        proc = processor_from_name("6332")
        assert proc.units == P6332.units

    def test_kwargs_forwarded(self):
        proc = processor_from_name("1111", has_speculation=False)
        assert not proc.has_speculation

    @pytest.mark.parametrize("bad", ["abc", "12345", "111", "", "1x11"])
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="four digits"):
            processor_from_name(bad)

    def test_zero_digit_rejected(self):
        with pytest.raises(ConfigurationError, match="zero"):
            processor_from_name("1011")
