"""Unit tests for repro.machine.mdes."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.operations import OpClass
from repro.machine.mdes import MachineDescription, default_latencies
from repro.machine.processor import make_processor


class TestLatencies:
    def test_defaults_cover_all_classes(self):
        lat = default_latencies()
        assert set(lat) == set(OpClass)
        assert all(v >= 1 for v in lat.values())

    def test_float_slower_than_int(self):
        lat = default_latencies()
        assert lat[OpClass.FLOAT] > lat[OpClass.INT]

    def test_zero_latency_rejected(self):
        lat = default_latencies()
        lat[OpClass.INT] = 0
        with pytest.raises(ConfigurationError, match="latency"):
            MachineDescription(make_processor(1, 1, 1, 1), lat)

    def test_missing_class_rejected(self):
        lat = default_latencies()
        del lat[OpClass.BRANCH]
        with pytest.raises(ConfigurationError, match="missing"):
            MachineDescription(make_processor(1, 1, 1, 1), lat)


class TestEncodingBits:
    def test_register_specifier_grows_with_regfile(self):
        narrow = MachineDescription(make_processor(1, 1, 1, 1))
        wide = MachineDescription(make_processor(6, 3, 3, 2))
        assert narrow.register_specifier_bits(OpClass.INT) == 5  # 32 regs
        assert wide.register_specifier_bits(OpClass.INT) == 8  # 256 regs

    def test_operation_bits_include_speculation_tag(self):
        spec = MachineDescription(make_processor(1, 1, 1, 1))
        nospec = MachineDescription(
            make_processor(1, 1, 1, 1, has_speculation=False)
        )
        assert (
            spec.operation_encoding_bits(OpClass.INT)
            == nospec.operation_encoding_bits(OpClass.INT) + 1
        )

    def test_predication_adds_predicate_specifier(self):
        pred = MachineDescription(
            make_processor(1, 1, 1, 1, has_predication=True)
        )
        plain = MachineDescription(make_processor(1, 1, 1, 1))
        assert pred.operation_encoding_bits(
            OpClass.INT
        ) > plain.operation_encoding_bits(OpClass.INT)

    def test_latency_accessor(self):
        mdes = MachineDescription(make_processor(1, 1, 1, 1))
        assert mdes.latency(OpClass.MEMORY) == default_latencies()[OpClass.MEMORY]
