"""Unit tests for repro.machine.cost."""

from repro.machine.cost import processor_cost
from repro.machine.processor import make_processor


class TestProcessorCost:
    def test_wider_machines_cost_more(self):
        names = [
            (1, 1, 1, 1),
            (2, 1, 1, 1),
            (3, 2, 2, 1),
            (4, 2, 2, 1),
            (6, 3, 3, 2),
        ]
        costs = [processor_cost(make_processor(*n)) for n in names]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_float_units_cost_more_than_int(self):
        base = make_processor(1, 1, 1, 1)
        more_int = make_processor(2, 1, 1, 1, int_registers=32, fp_registers=32)
        more_fp = make_processor(1, 2, 1, 1, int_registers=32, fp_registers=32)
        delta_int = processor_cost(more_int) - processor_cost(base)
        delta_fp = processor_cost(more_fp) - processor_cost(base)
        assert delta_fp > delta_int > 0

    def test_bigger_register_files_cost_more(self):
        small = make_processor(1, 1, 1, 1, int_registers=32)
        big = make_processor(1, 1, 1, 1, int_registers=128)
        assert processor_cost(big) > processor_cost(small)

    def test_features_cost(self):
        plain = make_processor(1, 1, 1, 1, has_speculation=False)
        spec = make_processor(1, 1, 1, 1, has_speculation=True)
        pred = make_processor(
            1, 1, 1, 1, has_speculation=False, has_predication=True
        )
        assert processor_cost(spec) > processor_cost(plain)
        assert processor_cost(pred) > processor_cost(plain)
