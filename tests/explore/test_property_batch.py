"""Property tests pinning the batched exploration path to the scalar path.

The vectorized layer (collisions_batch, MemoryEvaluator.misses_batch,
ParetoSet.insert_many) is required to reproduce the scalar oracle's
results; these properties exercise the equivalence over randomized
inputs, including tie-heavy Pareto offers and dilations landing ulps off
powers of two.
"""

import functools

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.ahh.batch import clear_collisions_batch_cache, collisions_batch
from repro.ahh.model import collisions
from repro.ahh.params import ComponentParameters, TraceParameters
from repro.cache.config import CacheConfig
from repro.explore.evaluators import MemoryEvaluator
from repro.explore.pareto import ParetoSet
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace

# ----------------------------------------------------------------------
# collisions_batch vs scalar collisions.
# ----------------------------------------------------------------------

triples = st.tuples(
    st.floats(min_value=0.0, max_value=5000.0),
    st.sampled_from([1, 2, 8, 64, 512]),
    st.integers(min_value=1, max_value=8),
)
methods = st.sampled_from(["auto", "direct", "stable"])


@given(batch=st.lists(triples, min_size=1, max_size=12), method=methods)
@settings(max_examples=100, deadline=None)
def test_collisions_batch_matches_scalar(batch, method):
    clear_collisions_batch_cache()
    u = np.array([t[0] for t in batch])
    sets = np.array([t[1] for t in batch])
    assoc = np.array([t[2] for t in batch])
    values = collisions_batch(u, sets, assoc, method=method)
    for k, (uu, ss, aa) in enumerate(batch):
        scalar = collisions(uu, ss, aa, method=method)
        assert values[k] == pytest.approx(scalar, rel=1e-9, abs=1e-9)


@given(batch=st.lists(triples, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_collisions_batch_memo_is_transparent(batch):
    """A memoized (cache-warm) second query returns identical values."""
    clear_collisions_batch_cache()
    u = np.array([t[0] for t in batch])
    sets = np.array([t[1] for t in batch])
    assoc = np.array([t[2] for t in batch])
    cold = collisions_batch(u, sets, assoc)
    warm = collisions_batch(u, sets, assoc)
    assert np.array_equal(cold, warm)


# ----------------------------------------------------------------------
# MemoryEvaluator.misses_batch vs per-config misses().
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=1)
def shared_evaluator() -> MemoryEvaluator:
    itrace = RangeTrace.build(
        [(i * 37) % 2048 * 16 for i in range(600)], [48] * 600, KIND_INSTR
    )
    dtrace = RangeTrace.build(
        [0x100000 + (i * 52) % 8192 for i in range(600)],
        [4] * 600,
        KIND_DATA,
    )
    unified = RangeTrace.concatenate([itrace, dtrace])
    params = TraceParameters(
        icache=ComponentParameters(300.0, 0.08, 9.0, granule_size=600),
        unified_instr=ComponentParameters(500.0, 0.08, 9.0, granule_size=1200),
        unified_data=ComponentParameters(350.0, 0.4, 2.2, granule_size=1200),
    )
    return MemoryEvaluator(itrace, dtrace, unified, params)


configs_st = st.lists(
    st.builds(
        CacheConfig,
        st.sampled_from([8, 16, 64]),
        st.sampled_from([1, 2]),
        st.sampled_from([16, 32, 64]),
    ),
    min_size=1,
    max_size=4,
    unique=True,
)
dilations_st = st.lists(
    st.one_of(
        st.just(1.0),
        st.just(2.0000000000000004),
        st.floats(min_value=0.5, max_value=4.0),
    ),
    min_size=1,
    max_size=4,
)


@given(role=st.sampled_from(["icache", "dcache", "unified"]),
       configs=configs_st, dilations=dilations_st)
@settings(max_examples=40, deadline=None)
def test_misses_batch_matches_scalar(role, configs, dilations):
    evaluator = shared_evaluator()
    grid = evaluator.misses_batch(role, configs, dilations)
    assert grid.shape == (len(configs), len(dilations))
    for i, config in enumerate(configs):
        for j, dilation in enumerate(dilations):
            scalar = evaluator.misses(role, config, dilation)
            assert grid[i, j] == pytest.approx(scalar, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# Skyline insert_many vs sequential insert_point.
# ----------------------------------------------------------------------

# Coarse coordinate grid: collisions and exact ties are common, which is
# exactly where the skyline's tie-breaking must match sequential order.
coords = st.tuples(
    st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0, 5.0]),
    st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0, 5.0]),
)


@given(
    existing=st.lists(coords, max_size=10),
    offered=st.lists(coords, max_size=25),
)
@settings(max_examples=150, deadline=None)
def test_insert_many_matches_sequential(existing, offered):
    sequential: ParetoSet = ParetoSet()
    bulk: ParetoSet = ParetoSet()
    for index, (cost, time) in enumerate(existing):
        sequential.insert_point(("pre", index), cost, time)
        bulk.insert_point(("pre", index), cost, time)
    for index, (cost, time) in enumerate(offered):
        sequential.insert_point(("new", index), cost, time)
    bulk.insert_many(
        [("new", index) for index in range(len(offered))],
        [cost for cost, _ in offered],
        [time for _, time in offered],
    )
    seq_points = {(p.design, p.cost, p.time) for p in sequential.points}
    bulk_points = {(p.design, p.cost, p.time) for p in bulk.points}
    assert seq_points == bulk_points
    assert bulk.is_consistent()
