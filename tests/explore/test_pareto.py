"""Unit and property tests for repro.explore.pareto."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.explore.pareto import ParetoPoint, ParetoSet


class TestParetoPoint:
    def test_dominates_strictly_better(self):
        assert ParetoPoint("a", 1.0, 1.0).dominates(ParetoPoint("b", 2.0, 2.0))

    def test_dominates_one_axis_tie(self):
        assert ParetoPoint("a", 1.0, 1.0).dominates(ParetoPoint("b", 1.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not ParetoPoint("a", 1.0, 1.0).dominates(
            ParetoPoint("b", 1.0, 1.0)
        )

    def test_incomparable(self):
        a = ParetoPoint("a", 1.0, 5.0)
        b = ParetoPoint("b", 5.0, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestParetoSet:
    def test_insert_and_reject(self):
        pareto = ParetoSet()
        assert pareto.insert_point("cheap-slow", cost=1.0, time=10.0)
        assert pareto.insert_point("dear-fast", cost=10.0, time=1.0)
        assert not pareto.insert_point("dominated", cost=10.0, time=10.0)
        assert len(pareto) == 2
        assert pareto.rejected == 1

    def test_insertion_evicts_dominated(self):
        pareto = ParetoSet()
        pareto.insert_point("old", cost=5.0, time=5.0)
        assert pareto.insert_point("better", cost=4.0, time=4.0)
        assert len(pareto) == 1
        assert pareto.points[0].design == "better"

    def test_duplicate_coordinates_keep_first(self):
        pareto = ParetoSet()
        pareto.insert_point("first", cost=1.0, time=1.0)
        assert not pareto.insert_point("second", cost=1.0, time=1.0)
        assert pareto.points[0].design == "first"

    def test_frontier_sorted_by_cost(self):
        pareto = ParetoSet()
        pareto.insert_point("c", cost=3.0, time=1.0)
        pareto.insert_point("a", cost=1.0, time=3.0)
        pareto.insert_point("b", cost=2.0, time=2.0)
        frontier = pareto.frontier()
        assert [p.design for p in frontier] == ["a", "b", "c"]
        times = [p.time for p in frontier]
        assert times == sorted(times, reverse=True)

    def test_best_time_and_cheapest(self):
        pareto = ParetoSet()
        pareto.insert_point("a", cost=1.0, time=3.0)
        pareto.insert_point("b", cost=3.0, time=1.0)
        assert pareto.best_time().design == "b"
        assert pareto.cheapest().design == "a"

    def test_empty_accessors_raise(self):
        with pytest.raises(ValueError):
            ParetoSet().best_time()
        with pytest.raises(ValueError):
            ParetoSet().cheapest()


@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_pareto_invariants(points):
    """After arbitrary insertions: no retained point dominates another,
    and every rejected/evicted candidate is dominated-or-duplicated by a
    retained one."""
    pareto = ParetoSet()
    for index, (cost, time) in enumerate(points):
        pareto.insert_point(index, cost, time)
    assert pareto.is_consistent()
    retained = {(p.cost, p.time) for p in pareto.points}
    for cost, time in points:
        covered = any(
            (rc <= cost and rt <= time) for rc, rt in retained
        )
        assert covered


class TestInsertMany:
    def test_matches_sequential_inserts(self):
        pareto = ParetoSet()
        pareto.insert_many(
            ["a", "b", "c", "d"],
            [1.0, 10.0, 10.0, 5.0],
            [10.0, 1.0, 10.0, 5.0],
        )
        assert {p.design for p in pareto.points} == {"a", "b", "d"}
        assert pareto.inserted == 3
        assert pareto.rejected == 1

    def test_existing_points_win_ties(self):
        pareto = ParetoSet()
        pareto.insert_point("old", cost=1.0, time=1.0)
        pareto.insert_many(["dup"], [1.0], [1.0])
        assert [p.design for p in pareto.points] == ["old"]
        assert pareto.rejected == 1

    def test_candidates_evict_existing(self):
        pareto = ParetoSet()
        pareto.insert_point("old", cost=5.0, time=5.0)
        pareto.insert_many(["better"], [4.0], [4.0])
        assert [p.design for p in pareto.points] == ["better"]

    def test_first_candidate_wins_duplicate_coordinates(self):
        pareto = ParetoSet.from_arrays(
            ["first", "second"], [1.0, 1.0], [1.0, 1.0]
        )
        assert [p.design for p in pareto.points] == ["first"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching lengths"):
            ParetoSet().insert_many(["a"], [1.0, 2.0], [1.0])

    def test_empty_offer_is_noop(self):
        pareto = ParetoSet()
        assert pareto.insert_many([], [], []) == 0
        assert len(pareto) == 0


def _pairwise_consistent(pareto: ParetoSet) -> bool:
    """The retired O(n^2) consistency check, kept as a test oracle."""
    for a in pareto.points:
        for b in pareto.points:
            if a is not b and a.dominates(b):
                return False
    return True


@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        max_size=30,
    )
)
@settings(max_examples=150, deadline=None)
def test_is_consistent_matches_pairwise_oracle(points):
    """The linear-scan is_consistent agrees with the O(n^2) pairwise
    check, both on valid Pareto sets and on hand-built corrupted ones."""
    pareto = ParetoSet()
    for index, (cost, time) in enumerate(points):
        pareto.insert_point(index, cost, time)
    assert pareto.is_consistent() is _pairwise_consistent(pareto) is True
    # Corrupt the set by force-appending every raw point: duplicates and
    # dominated points sneak in, and both checks must agree on the result.
    corrupted = ParetoSet(
        points=[
            ParetoPoint(i, cost, time)
            for i, (cost, time) in enumerate(points)
        ]
    )
    assert corrupted.is_consistent() is _pairwise_consistent(corrupted)
