"""Unit and property tests for repro.explore.pareto."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.explore.pareto import ParetoPoint, ParetoSet


class TestParetoPoint:
    def test_dominates_strictly_better(self):
        assert ParetoPoint("a", 1.0, 1.0).dominates(ParetoPoint("b", 2.0, 2.0))

    def test_dominates_one_axis_tie(self):
        assert ParetoPoint("a", 1.0, 1.0).dominates(ParetoPoint("b", 1.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not ParetoPoint("a", 1.0, 1.0).dominates(
            ParetoPoint("b", 1.0, 1.0)
        )

    def test_incomparable(self):
        a = ParetoPoint("a", 1.0, 5.0)
        b = ParetoPoint("b", 5.0, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestParetoSet:
    def test_insert_and_reject(self):
        pareto = ParetoSet()
        assert pareto.insert_point("cheap-slow", cost=1.0, time=10.0)
        assert pareto.insert_point("dear-fast", cost=10.0, time=1.0)
        assert not pareto.insert_point("dominated", cost=10.0, time=10.0)
        assert len(pareto) == 2
        assert pareto.rejected == 1

    def test_insertion_evicts_dominated(self):
        pareto = ParetoSet()
        pareto.insert_point("old", cost=5.0, time=5.0)
        assert pareto.insert_point("better", cost=4.0, time=4.0)
        assert len(pareto) == 1
        assert pareto.points[0].design == "better"

    def test_duplicate_coordinates_keep_first(self):
        pareto = ParetoSet()
        pareto.insert_point("first", cost=1.0, time=1.0)
        assert not pareto.insert_point("second", cost=1.0, time=1.0)
        assert pareto.points[0].design == "first"

    def test_frontier_sorted_by_cost(self):
        pareto = ParetoSet()
        pareto.insert_point("c", cost=3.0, time=1.0)
        pareto.insert_point("a", cost=1.0, time=3.0)
        pareto.insert_point("b", cost=2.0, time=2.0)
        frontier = pareto.frontier()
        assert [p.design for p in frontier] == ["a", "b", "c"]
        times = [p.time for p in frontier]
        assert times == sorted(times, reverse=True)

    def test_best_time_and_cheapest(self):
        pareto = ParetoSet()
        pareto.insert_point("a", cost=1.0, time=3.0)
        pareto.insert_point("b", cost=3.0, time=1.0)
        assert pareto.best_time().design == "b"
        assert pareto.cheapest().design == "a"

    def test_empty_accessors_raise(self):
        with pytest.raises(ValueError):
            ParetoSet().best_time()
        with pytest.raises(ValueError):
            ParetoSet().cheapest()


@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_pareto_invariants(points):
    """After arbitrary insertions: no retained point dominates another,
    and every rejected/evicted candidate is dominated-or-duplicated by a
    retained one."""
    pareto = ParetoSet()
    for index, (cost, time) in enumerate(points):
        pareto.insert_point(index, cost, time)
    assert pareto.is_consistent()
    retained = {(p.cost, p.time) for p in pareto.points}
    for cost, time in points:
        covered = any(
            (rc <= cost and rt <= time) for rc, rt in retained
        )
        assert covered
