"""Unit tests for repro.explore.evaluators."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError
from repro.explore.evaluators import (
    EvaluationCosts,
    MemoryEvaluator,
    exhaustive_evaluation_hours,
    hierarchical_evaluation_hours,
)
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace


def toy_traces():
    itrace = RangeTrace.build(
        [i % 7 * 64 for i in range(300)], [48] * 300, KIND_INSTR
    )
    dtrace = RangeTrace.build(
        [0x100000 + (i * 52) % 4096 for i in range(300)], [4] * 300, KIND_DATA
    )
    unified = RangeTrace.concatenate([itrace, dtrace])
    return itrace, dtrace, unified


def make_evaluator(params=None):
    itrace, dtrace, unified = toy_traces()
    return MemoryEvaluator(itrace, dtrace, unified, params)


class TestSimulationBatching:
    def test_one_pass_per_role_and_line_size(self):
        evaluator = make_evaluator()
        configs = [
            CacheConfig(8, 1, 32),
            CacheConfig(16, 1, 32),
            CacheConfig(8, 2, 32),
        ]
        evaluator.register("icache", configs)
        for config in configs:
            evaluator.simulated_misses("icache", config)
        assert evaluator.simulation_passes == 1

    def test_late_registration_redoes_pass(self):
        evaluator = make_evaluator()
        evaluator.simulated_misses("icache", CacheConfig(8, 1, 32))
        assert evaluator.simulation_passes == 1
        # New set count for the same line size forces one redo.
        evaluator.simulated_misses("icache", CacheConfig(64, 1, 32))
        assert evaluator.simulation_passes == 2
        # Both remain answerable without further passes.
        evaluator.simulated_misses("icache", CacheConfig(8, 1, 32))
        assert evaluator.simulation_passes == 2

    def test_distinct_line_sizes_distinct_passes(self):
        evaluator = make_evaluator()
        evaluator.simulated_misses("icache", CacheConfig(8, 1, 16))
        evaluator.simulated_misses("icache", CacheConfig(8, 1, 32))
        assert evaluator.simulation_passes == 2

    def test_unknown_role_rejected(self):
        evaluator = make_evaluator()
        with pytest.raises(ConfigurationError, match="role"):
            evaluator.misses("l3", CacheConfig(8, 1, 32))


class TestDilationDispatch:
    def test_dcache_is_dilation_independent(self):
        evaluator = make_evaluator()
        config = CacheConfig(8, 1, 32)
        assert evaluator.dcache_misses(config, 1.0) == evaluator.dcache_misses(
            config, 3.0
        )

    def test_estimation_without_params_raises(self):
        evaluator = make_evaluator(params=None)
        with pytest.raises(ConfigurationError, match="without trace"):
            evaluator.icache_misses(CacheConfig(8, 1, 32), 2.0)
        with pytest.raises(ConfigurationError, match="without trace"):
            evaluator.unified_misses(CacheConfig(8, 1, 32), 2.0)

    def test_simulation_queries_work_without_params(self):
        evaluator = make_evaluator(params=None)
        config = CacheConfig(8, 1, 32)
        assert evaluator.icache_misses(config, 1.0) >= 0
        assert evaluator.unified_misses(config, 1.0) >= 0


class TestCostArithmetic:
    def test_paper_466_days_example(self):
        hours = exhaustive_evaluation_hours(40, 20)
        assert hours == 40 * 20 * 14
        assert hours / 24 == pytest.approx(466, abs=1)

    def test_hierarchical_reduction(self):
        # Two line sizes per cache type, single reference processor.
        hours = hierarchical_evaluation_hours(
            {"icache": 2, "dcache": 2, "unified": 2}
        )
        assert hours == 2 * 5 + 2 * 2 + 2 * 7
        assert hours < exhaustive_evaluation_hours(40, 20) / 100

    def test_unknown_trace_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            hierarchical_evaluation_hours({"l3": 1})

    def test_costs_total(self):
        assert EvaluationCosts().total_hours == 14.0


class TestCheckpointAdoption:
    """attach_checkpoint: priming states survive across evaluators."""

    def _attached(self, tmp_path, name="ckpt.sqlite"):
        from repro.service.store import open_evaluation_cache

        cache = open_evaluation_cache(tmp_path / name)
        evaluator = make_evaluator()
        evaluator.attach_checkpoint(cache)
        return evaluator, cache

    def test_second_evaluator_adopts_instead_of_simulating(self, tmp_path):
        first, cache = self._attached(tmp_path)
        config = CacheConfig(8, 1, 32)
        misses = first.simulated_misses("icache", config)
        assert first.simulation_passes == 1
        assert len(cache) == 1

        second = make_evaluator()
        second.attach_checkpoint(cache)
        assert second.simulated_misses("icache", config) == misses
        assert second.simulation_passes == 0  # adopted, not re-simulated

    def test_prime_counts_adopted_units(self, tmp_path):
        first, cache = self._attached(tmp_path)
        first.register("icache", [CacheConfig(8, 1, 32)])
        first.register("dcache", [CacheConfig(16, 1, 16)])
        assert first.prime() == 2

        second = make_evaluator()
        second.attach_checkpoint(cache)
        second.register("icache", [CacheConfig(8, 1, 32)])
        second.register("dcache", [CacheConfig(16, 1, 16)])
        assert second.prime() == 2  # both adopted from the checkpoint
        assert second.simulation_passes == 0

    def test_json_backend_works_too(self, tmp_path):
        first, cache = self._attached(tmp_path, name="ckpt.json")
        config = CacheConfig(8, 1, 32)
        misses = first.simulated_misses("icache", config)

        from repro.service.store import open_evaluation_cache

        second = make_evaluator()
        second.attach_checkpoint(open_evaluation_cache(tmp_path / "ckpt.json"))
        assert second.simulated_misses("icache", config) == misses
        assert second.simulation_passes == 0

    def test_trace_keys_partition_the_namespace(self, tmp_path):
        first, cache = self._attached(tmp_path)
        # Distinct traces hash to distinct checkpoint keys: an evaluator
        # over different traces must NOT adopt the first one's states.
        other = MemoryEvaluator(*toy_traces()[::-1], None)
        other.attach_checkpoint(cache)
        first.simulated_misses("icache", CacheConfig(8, 1, 32))
        other.simulated_misses("icache", CacheConfig(8, 1, 32))
        assert other.simulation_passes == 1  # simulated, not adopted
