"""MemoryEvaluator.prime: pending passes, parallel execution, state merge."""

import numpy as np

from repro.cache.config import CacheConfig
from repro.explore.evaluators import MemoryEvaluator
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace


def make_evaluator():
    instr = RangeTrace.build([0, 64, 0, 128, 64], [32, 32, 32, 64, 32], KIND_INSTR)
    data = RangeTrace.build([512, 516, 512, 640], [4, 4, 4, 4], KIND_DATA)
    unified = RangeTrace.concatenate([instr, data])
    return MemoryEvaluator(instr, data, unified, params=None, max_assoc=4)


CONFIGS = [
    CacheConfig(4, 1, 16),
    CacheConfig(8, 2, 16),
    CacheConfig(4, 1, 32),
]


class TestPendingUnits:
    def test_registration_creates_pending_units(self):
        ev = make_evaluator()
        ev.register("icache", CONFIGS)
        ev.register("dcache", CONFIGS[:1])
        assert set(ev.pending_units()) == {
            ("icache", 16),
            ("icache", 32),
            ("dcache", 16),
        }

    def test_prime_clears_pending_and_counts_passes(self):
        ev = make_evaluator()
        ev.register("icache", CONFIGS)
        assert ev.prime() == 2
        assert ev.pending_units() == []
        assert ev.simulation_passes == 2
        assert ev.prime() == 0


class TestParallelPrime:
    def test_parallel_prime_matches_serial_queries(self):
        serial = make_evaluator()
        parallel = make_evaluator()
        for ev in (serial, parallel):
            for role in ("icache", "dcache", "unified"):
                ev.register(role, CONFIGS)
        serial.prime()
        assert parallel.prime(max_workers=2) == 6
        for role in ("icache", "dcache", "unified"):
            for config in CONFIGS:
                assert parallel.simulated_misses(role, config) == (
                    serial.simulated_misses(role, config)
                )
        # Priming answered everything: no further passes were needed.
        assert parallel.simulation_passes == 6

    def test_unit_job_feeds_group_state_worker(self):
        from repro.cache.sweep import simulate_group_state

        ev = make_evaluator()
        config = CacheConfig(4, 2, 16)
        ev.register("unified", [config])
        accesses, hists = simulate_group_state(*ev.unit_job("unified", 16))
        ev.install_unit("unified", 16, accesses, hists)
        oracle = make_evaluator()
        assert ev.simulated_misses("unified", config) == (
            oracle.simulated_misses("unified", config)
        )
        assert ev.simulation_passes == 1


class TestFaultTolerantPrime:
    def test_worker_raise_retried_and_matches_serial(self):
        from repro.runtime import ExecutorPolicy, FaultPlan, RunJournal

        serial = make_evaluator()
        faulty = make_evaluator()
        for ev in (serial, faulty):
            for role in ("icache", "dcache"):
                ev.register(role, CONFIGS)
        serial.prime()
        journal = RunJournal()
        policy = ExecutorPolicy(
            max_workers=2,
            retries=2,
            backoff=0.0,
            fault=FaultPlan("raise", match="icache", times=1),
        )
        assert faulty.prime(policy=policy, journal=journal) == 4
        assert journal.select("retry")
        for role in ("icache", "dcache"):
            for config in CONFIGS:
                assert faulty.simulated_misses(role, config) == (
                    serial.simulated_misses(role, config)
                )

    def test_exhausted_retries_raise(self):
        import pytest

        from repro.errors import RuntimeExecutionError
        from repro.runtime import ExecutorPolicy, FaultPlan

        ev = make_evaluator()
        ev.register("icache", CONFIGS)
        policy = ExecutorPolicy(
            max_workers=2,
            retries=0,
            backoff=0.0,
            fault=FaultPlan("raise", match="icache", times=99),
        )
        with pytest.raises(RuntimeExecutionError, match="pass"):
            ev.prime(policy=policy)


class TestEvalCacheBulk:
    def test_bulk_defers_flushes(self, tmp_path):
        from repro.explore.evalcache import EvaluationCache

        path = tmp_path / "cache.json"
        cache = EvaluationCache(path)
        flushes = []
        original = cache._flush

        def counting_flush():
            flushes.append(1)
            original()

        cache._flush = counting_flush
        with cache.bulk():
            for i in range(10):
                cache.put(f"k{i}", i)
        # 10 deferred no-op flushes + one real write on exit.
        reloaded = EvaluationCache(path)
        assert len(reloaded) == 10
        assert reloaded.get("k3") == 3

    def test_put_many_single_write(self, tmp_path):
        from repro.explore.evalcache import EvaluationCache

        path = tmp_path / "cache.json"
        cache = EvaluationCache(path)
        cache.put_many({"a": 1, "b": [2, 3], "c": "x"})
        reloaded = EvaluationCache(path)
        assert reloaded.get("b") == [2, 3]
        assert len(reloaded) == 3

    def test_bulk_nests_without_double_flush(self, tmp_path):
        from repro.explore.evalcache import EvaluationCache

        cache = EvaluationCache(tmp_path / "cache.json")
        with cache.bulk():
            with cache.bulk():
                cache.put("inner", 1)
            cache.put("outer", 2)
        reloaded = EvaluationCache(tmp_path / "cache.json")
        assert len(reloaded) == 2
