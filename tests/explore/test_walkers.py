"""Unit tests for repro.explore.walkers."""

import pytest

from repro.cache.area import cache_cost
from repro.cache.inclusion import satisfies_inclusion
from repro.errors import ConfigurationError
from repro.explore.spec import CacheDesignSpace, ProcessorDesignSpace
from repro.explore.walkers import CacheWalker, MemoryWalker, ProcessorWalker
from repro.machine.presets import PAPER_PROCESSORS


@pytest.fixture(scope="module")
def evaluator(tiny_pipeline_module):
    return tiny_pipeline_module.memory_evaluator()


@pytest.fixture(scope="module")
def tiny_pipeline_module():
    from repro.experiments.pipeline import ExperimentPipeline
    from repro.workloads.suite import tiny_workload

    return ExperimentPipeline(
        tiny_workload(), max_visits=3_000, i_granule=200, u_granule=800
    )


SMALL_SPACE = CacheDesignSpace(
    sizes_kb=(0.5, 1, 2), assocs=(1, 2), line_sizes=(16, 32)
)


class TestCacheWalker:
    def test_step_builds_consistent_pareto(self, evaluator):
        walker = CacheWalker("icache", SMALL_SPACE, evaluator)
        pareto = walker.step(1.0)
        assert len(pareto) >= 1
        assert pareto.is_consistent()
        # Costs in the frontier are the area model's.
        for point in pareto.frontier():
            assert point.cost == pytest.approx(cache_cost(point.design))

    def test_walk_parameterized_by_dilation(self, evaluator):
        walker = CacheWalker("icache", SMALL_SPACE, evaluator)
        paretos = walker.walk(dilations=(1.0, 2.0))
        assert set(paretos) == {1.0, 2.0}
        # Dilation 2 strictly increases instruction misses, so the best
        # achievable time at fixed cost cannot improve.
        best1 = paretos[1.0].best_time().time
        best2 = paretos[2.0].best_time().time
        assert best2 >= best1

    def test_bad_role_rejected(self, evaluator):
        with pytest.raises(ConfigurationError, match="role"):
            CacheWalker("l3", SMALL_SPACE, evaluator)


class TestProcessorWalker:
    def test_walk_uses_cycles_callable(self):
        space = ProcessorDesignSpace(
            int_units=(1, 2, 4), float_units=(1,), memory_units=(1,),
            branch_units=(1,),
        )
        cycles = {"1111": 100.0, "2111": 80.0, "4111": 79.0}
        pareto = ProcessorWalker(space, lambda p: cycles[p.name]).walk()
        assert pareto.is_consistent()
        names = {p.design for p in pareto.points}
        # 4111 is barely faster than 2111 but much more expensive: both
        # survive (incomparable); 1111 survives as the cheapest.
        assert "1111" in names


class TestMemoryWalker:
    def test_combined_designs_satisfy_inclusion(self, evaluator):
        unified_space = CacheDesignSpace(
            sizes_kb=(8, 16), assocs=(2,), line_sizes=(32,)
        )
        walker = MemoryWalker(
            CacheWalker("icache", SMALL_SPACE, evaluator),
            CacheWalker("dcache", SMALL_SPACE, evaluator),
            CacheWalker("unified", unified_space, evaluator),
        )
        pareto = walker.walk(dilation=1.0)
        assert len(pareto) >= 1
        assert pareto.is_consistent()
        for point in pareto.frontier():
            memory = point.design
            assert satisfies_inclusion(memory.icache, memory.unified)
            assert satisfies_inclusion(memory.dcache, memory.unified)
            expected_cost = (
                cache_cost(memory.icache)
                + cache_cost(memory.dcache)
                + cache_cost(memory.unified)
            )
            assert point.cost == pytest.approx(expected_cost)
