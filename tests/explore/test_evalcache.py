"""Unit tests for repro.explore.evalcache."""

import multiprocessing
import sys

import pytest

from repro.errors import EvaluationCacheError
from repro.explore.evalcache import EvaluationCache


class TestInMemory:
    def test_get_put(self):
        cache = EvaluationCache()
        assert cache.get("k") is None
        cache.put("k", 1.5)
        assert cache.get("k") == 1.5
        assert "k" in cache
        assert len(cache) == 1

    def test_get_or_compute_calls_once(self):
        cache = EvaluationCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.misses == 1


class TestHitMissAccounting:
    """Regression pin: get/get_or_compute/bulk all count hits AND misses."""

    def test_get_counts_misses(self):
        cache = EvaluationCache()
        assert cache.get("absent") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_get_none_value_is_a_hit(self):
        # Present-with-None matches __contains__: stored null is a hit.
        cache = EvaluationCache()
        cache.put("k", None)
        assert "k" in cache
        assert cache.get("k") is None
        assert (cache.hits, cache.misses) == (1, 0)

    def test_get_or_compute_counts(self):
        cache = EvaluationCache()
        cache.get_or_compute("k", lambda: 7)
        cache.get_or_compute("k", lambda: 7)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_bulk_preserves_counts(self, tmp_path):
        cache = EvaluationCache(tmp_path / "metrics.json")
        with cache.bulk():
            for i in range(4):
                cache.get_or_compute(f"k{i}", lambda: i)
            cache.get_or_compute("k0", lambda: 0)
            assert cache.get("k1") == 1
            assert cache.get("nope") is None
        assert (cache.hits, cache.misses) == (2, 5)

    def test_hit_rate_and_stats(self):
        cache = EvaluationCache()
        assert cache.hit_rate == 0.0
        cache.put("k", 1)
        cache.get("k")
        cache.get("absent")
        assert cache.hit_rate == 0.5
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "entries": 1,
        }


class TestPersistent:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        cache = EvaluationCache(path)
        cache.put("misses/gcc/ic32", 1234)
        cache.put("dilation/6332", 2.79)
        reloaded = EvaluationCache(path)
        assert reloaded.get("misses/gcc/ic32") == 1234
        assert reloaded.get("dilation/6332") == 2.79

    def test_structured_values(self, tmp_path):
        path = tmp_path / "metrics.json"
        cache = EvaluationCache(path)
        cache.put("vector", [1, 2, 3])
        cache.put("table", {"a": 1.0})
        reloaded = EvaluationCache(path)
        assert reloaded.get("vector") == [1, 2, 3]
        assert reloaded.get("table") == {"a": 1.0}

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("{not json")
        with pytest.raises(EvaluationCacheError, match="unreadable"):
            EvaluationCache(path)

    def test_non_object_file_raises(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("[1, 2]")
        with pytest.raises(EvaluationCacheError, match="not a JSON object"):
            EvaluationCache(path)

    def test_empty_file_ok(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("")
        cache = EvaluationCache(path)
        assert len(cache) == 0

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "metrics.json"
        cache = EvaluationCache(path)
        cache.put("k", 1)
        assert path.exists()


def _hammer_worker(path, worker, n_keys):
    cache = EvaluationCache(path)
    for i in range(n_keys):
        cache.put(f"w{worker}/k{i}", worker * 1000 + i)


class TestConcurrentWriters:
    """Regression: two flushers of one path must union, not clobber."""

    def test_two_instances_merge_on_flush(self, tmp_path):
        path = tmp_path / "metrics.json"
        first = EvaluationCache(path)
        second = EvaluationCache(path)
        first.put("a", 1)
        second.put("b", 2)  # pre-fix this flush dropped "a"
        reloaded = EvaluationCache(path)
        assert reloaded.get("a") == 1
        assert reloaded.get("b") == 2

    def test_later_writer_wins_per_key(self, tmp_path):
        path = tmp_path / "metrics.json"
        first = EvaluationCache(path)
        second = EvaluationCache(path)
        first.put("k", "old")
        second.put("k", "new")
        assert EvaluationCache(path).get("k") == "new"

    def test_bulk_flush_merges(self, tmp_path):
        path = tmp_path / "metrics.json"
        first = EvaluationCache(path)
        second = EvaluationCache(path)
        with first.bulk():
            for i in range(5):
                first.put(f"first/{i}", i)
        with second.bulk():
            for i in range(5):
                second.put(f"second/{i}", i)
        reloaded = EvaluationCache(path)
        assert len(reloaded) == 10

    @pytest.mark.skipif(
        sys.platform.startswith("win"), reason="fork + flock are POSIX"
    )
    def test_multiprocess_hammer(self, tmp_path):
        path = tmp_path / "metrics.json"
        ctx = multiprocessing.get_context("fork")
        workers, n_keys = 4, 20
        procs = [
            ctx.Process(target=_hammer_worker, args=(path, w, n_keys))
            for w in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        reloaded = EvaluationCache(path)
        assert len(reloaded) == workers * n_keys
        for w in range(workers):
            for i in range(n_keys):
                assert reloaded.get(f"w{w}/k{i}") == w * 1000 + i


class TestTmpHygiene:
    """Regression: interrupted flushes must not leak *.tmp siblings."""

    def test_unserializable_value_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "metrics.json"
        cache = EvaluationCache(path)
        cache.put("good", 1)
        with pytest.raises(EvaluationCacheError, match="cannot write"):
            cache.put("bad", object())  # json.dump raises TypeError
        assert list(tmp_path.glob("*.tmp")) == []
        # The cache file is still intact from the last good flush.
        assert EvaluationCache(path).get("good") == 1

    def test_stale_tmps_reaped_on_flush(self, tmp_path):
        path = tmp_path / "metrics.json"
        stale = tmp_path / "metrics.jsonabc123.tmp"
        stale.write_text("{}")
        unrelated = tmp_path / "other.jsonxyz.tmp"
        unrelated.write_text("{}")
        cache = EvaluationCache(path)
        cache.put("k", 1)
        assert not stale.exists()
        assert unrelated.exists()  # only this path's siblings are reaped
