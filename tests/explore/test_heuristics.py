"""Unit tests for repro.explore.heuristics."""

import pytest

from repro.explore.heuristics import GreedyProcessorWalker, GuidedCacheWalker
from repro.isa.operations import OpClass
from repro.explore.spec import CacheDesignSpace, ProcessorDesignSpace
from repro.explore.walkers import CacheWalker


@pytest.fixture(scope="module")
def evaluator(pipeline_module):
    return pipeline_module.memory_evaluator()


@pytest.fixture(scope="module")
def pipeline_module():
    from repro.experiments.pipeline import ExperimentPipeline
    from repro.workloads.suite import tiny_workload

    return ExperimentPipeline(
        tiny_workload(), max_visits=3_000, i_granule=200, u_granule=800
    )


class TestGreedyProcessorWalker:
    SPACE = ProcessorDesignSpace(
        int_units=(1, 2, 4), float_units=(1, 2), memory_units=(1, 2),
        branch_units=(1, 2),
    )

    @staticmethod
    def synthetic_cycles(processor):
        # Cycles improve with width but saturate: a clean hill to climb.
        return 1000.0 / (1.0 + 0.3 * (processor.issue_width - 4))

    def test_explores_fewer_designs_than_exhaustive(self):
        walker = GreedyProcessorWalker(self.SPACE, self.synthetic_cycles)
        pareto = walker.walk()
        assert pareto.is_consistent()
        assert len(walker.evaluated) <= len(self.SPACE)
        # With monotone-improving cycles every neighbour move is taken,
        # so the walk reaches the widest machine.
        names = set(walker.evaluated)
        assert "1111" in names
        assert "4222" in names

    def test_prunes_unprofitable_directions(self):
        def cycles(processor):
            # Only int units help; other growth is pure cost.
            return 1000.0 / processor.units[OpClass.INT]

        walker = GreedyProcessorWalker(self.SPACE, cycles)
        walker.walk()
        evaluated = set(walker.evaluated)
        # The int chain is explored...
        assert {"1111", "2111", "4111"} <= evaluated
        # ...but deep non-int growth beyond one probing step is not.
        assert "1222" not in evaluated

    def test_real_pipeline_cycles(self, pipeline_module):
        walker = GreedyProcessorWalker(
            self.SPACE, pipeline_module.processor_cycles
        )
        pareto = walker.walk()
        assert len(pareto) >= 1
        assert pareto.cheapest().design == "1111"


class TestGuidedCacheWalker:
    SPACE = CacheDesignSpace(
        sizes_kb=(0.5, 1, 2, 4, 8, 16, 32), assocs=(1, 2),
        line_sizes=(16, 32),
    )

    def test_matches_exhaustive_frontier_quality(self, evaluator):
        guided = GuidedCacheWalker("icache", self.SPACE, evaluator)
        guided_pareto = guided.step(1.0)
        exhaustive = CacheWalker("icache", self.SPACE, evaluator).step(1.0)
        assert guided_pareto.is_consistent()
        # The guided walker's best time matches the exhaustive best
        # (capacity growth past the knee never wins).
        assert guided_pareto.best_time().time == pytest.approx(
            exhaustive.best_time().time, rel=0.01
        )

    def test_evaluates_fewer_configs(self, evaluator):
        guided = GuidedCacheWalker("icache", self.SPACE, evaluator)
        guided.step(1.0)
        assert guided.evaluated < len(self.SPACE)
