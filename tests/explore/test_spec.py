"""Unit tests for repro.explore.spec."""

import pytest

from repro.errors import ConfigurationError
from repro.explore.spec import (
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)


class TestCacheDesignSpace:
    def test_enumeration_filters_infeasible(self):
        space = CacheDesignSpace(
            sizes_kb=(1, 2), assocs=(1, 2), line_sizes=(16, 32)
        )
        configs = space.configurations()
        assert all(c.sets & (c.sets - 1) == 0 for c in configs)
        assert len(configs) == 8

    def test_fractional_kb_supported(self):
        space = CacheDesignSpace(
            sizes_kb=(0.5,), assocs=(1,), line_sizes=(16,)
        )
        (config,) = space.configurations()
        assert config.size_bytes == 512

    def test_infeasible_combination_dropped(self):
        # 1KB 4-way with 512-byte lines is impossible (sets < 1).
        space = CacheDesignSpace(
            sizes_kb=(1,), assocs=(4,), line_sizes=(128, 512)
        )
        configs = space.configurations()
        assert all(c.line_size == 128 for c in configs)

    def test_fully_empty_space_raises(self):
        space = CacheDesignSpace(
            sizes_kb=(0.0625,), assocs=(8,), line_sizes=(512,)
        )
        with pytest.raises(ConfigurationError, match="empty"):
            space.configurations()

    def test_empty_dimension_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            CacheDesignSpace(sizes_kb=(), assocs=(1,), line_sizes=(16,))

    def test_line_size_groups(self):
        space = CacheDesignSpace(
            sizes_kb=(1, 2), assocs=(1,), line_sizes=(16, 32)
        )
        groups = space.line_size_groups()
        assert set(groups) == {16, 32}
        assert all(
            c.line_size == line
            for line, configs in groups.items()
            for c in configs
        )

    def test_ports_expand_space(self):
        space = CacheDesignSpace(
            sizes_kb=(1,), assocs=(1,), line_sizes=(16,), ports=(1, 2)
        )
        assert len(space) == 2


class TestProcessorDesignSpace:
    def test_cartesian_product(self):
        space = ProcessorDesignSpace(
            int_units=(1, 2), float_units=(1,), memory_units=(1, 2),
            branch_units=(1,),
        )
        assert len(space) == 4
        names = {p.name for p in space}
        assert names == {"1111", "1121", "2111", "2121"}

    def test_feature_flags_propagate(self):
        space = ProcessorDesignSpace(
            int_units=(1,), float_units=(1,), memory_units=(1,),
            branch_units=(1,), has_speculation=False,
        )
        (proc,) = space.processors()
        assert not proc.has_speculation


class TestSystemDesignSpace:
    def test_total_designs_is_cross_product(self):
        space = SystemDesignSpace()
        assert space.total_designs() == (
            len(space.processors)
            * len(space.icache)
            * len(space.dcache)
            * len(space.unified)
        )
        assert space.total_designs() > 1000
