"""End-to-end spacewalker test on the tiny workload."""

import pytest

from repro.explore.spec import (
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)
from repro.explore.spacewalker import Spacewalker


@pytest.fixture(scope="module")
def pipeline():
    from repro.experiments.pipeline import ExperimentPipeline
    from repro.workloads.suite import tiny_workload

    return ExperimentPipeline(
        tiny_workload(), max_visits=3_000, i_granule=200, u_granule=800
    )


@pytest.fixture(scope="module")
def small_space():
    return SystemDesignSpace(
        processors=ProcessorDesignSpace(
            int_units=(1, 3), float_units=(1,), memory_units=(1, 2),
            branch_units=(1,),
        ),
        icache=CacheDesignSpace(
            sizes_kb=(0.5, 1, 2), assocs=(1, 2), line_sizes=(16, 32)
        ),
        dcache=CacheDesignSpace(
            sizes_kb=(0.5, 1), assocs=(1,), line_sizes=(16, 32)
        ),
        unified=CacheDesignSpace(
            sizes_kb=(8, 16), assocs=(2,), line_sizes=(32,)
        ),
    )


class TestSpacewalker:
    def test_walk_produces_system_pareto(self, pipeline, small_space):
        walker = Spacewalker(small_space, pipeline)
        pareto = walker.walk()
        assert len(pareto) >= 2  # at least a cheap and a fast system
        assert pareto.is_consistent()
        names = {point.design.processor for point in pareto.points}
        # The cheapest system should use the cheapest processor.
        assert pareto.cheapest().design.processor == "1111"
        assert names <= {p.name for p in small_space.processors}

    def test_frontier_monotone(self, pipeline, small_space):
        pareto = Spacewalker(small_space, pipeline).walk()
        frontier = pareto.frontier()
        costs = [p.cost for p in frontier]
        times = [p.time for p in frontier]
        assert costs == sorted(costs)
        assert times == sorted(times, reverse=True)

    def test_memory_designs_are_legal_hierarchies(self, pipeline, small_space):
        from repro.cache.inclusion import satisfies_inclusion

        pareto = Spacewalker(small_space, pipeline).walk()
        for point in pareto.points:
            memory = point.design.memory
            assert satisfies_inclusion(memory.icache, memory.unified)
            assert satisfies_inclusion(memory.dcache, memory.unified)

    def test_batched_and_scalar_walks_agree(self, pipeline, small_space):
        """The vectorized walk must reproduce the scalar frontier
        exactly (same designs, costs and times within 1e-9)."""
        scalar = Spacewalker(small_space, pipeline, batched=False).walk()
        batched = Spacewalker(small_space, pipeline, batched=True).walk()
        fs, fb = scalar.frontier(), batched.frontier()
        assert [p.design for p in fs] == [p.design for p in fb]
        for a, b in zip(fs, fb):
            assert b.cost == pytest.approx(a.cost, rel=1e-9, abs=1e-9)
            assert b.time == pytest.approx(a.time, rel=1e-9, abs=1e-9)
