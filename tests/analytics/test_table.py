"""Unit tests for run-table formatting and CSV export."""

import csv
import io

import pytest

from repro.analytics.runs import record_run
from repro.analytics.table import (
    RUN_TABLE_COLUMNS,
    RUN_TABLE_HEADER,
    format_cell,
    run_table_csv,
    run_table_rows,
)
from repro.service.store import ResultStore


@pytest.fixture
def store(tmp_path):
    s = ResultStore(tmp_path / "table.sqlite")
    try:
        yield s
    finally:
        s.close()


RUN = {
    "id": "run-x",
    "kind": "sweep",
    "state": "done",
    "started": 10.0,
    "finished": 11.0,
    "wall_s": 1.0,
    "rows": 2,
    "journal": {"passes": 1},
}
ROWS = [
    {
        "design": "S64A1L16",
        "benchmark": "epic",
        "sets": 64,
        "assoc": 1,
        "line_size": 16,
        "accesses": 1000,
        "misses": 42.5,
        "wall_s": 0.125,
        "cache_hits": 0,
        "estimated": False,
    },
    {
        "design": "S128A1L16",
        "benchmark": "epic",
        "sets": 128,
        "assoc": 1,
        "line_size": 16,
        "misses": 17.0,
        "estimated": True,
        "extra": {"dilation": 1.25},
    },
]


class TestFormatCell:
    def test_none_is_empty(self):
        assert format_cell(None) == ""

    def test_bool_is_01(self):
        assert format_cell(True) == "1"
        assert format_cell(False) == "0"

    def test_int_plain(self):
        assert format_cell(64) == "64"

    def test_float_repr_round_trips(self):
        for value in (42.5, 0.1, 1e-9, 123456789.123456):
            assert float(format_cell(value)) == value

    def test_whole_float_keeps_float_form(self):
        assert format_cell(17.0) == "17.0"

    def test_dict_compact_json(self):
        assert format_cell({"a": 1, "b": "x"}) == '{"a":1,"b":"x"}'


class TestHeader:
    def test_header_matches_registry(self):
        assert RUN_TABLE_HEADER == tuple(c[0] for c in RUN_TABLE_COLUMNS)

    def test_header_has_no_duplicates(self):
        assert len(set(RUN_TABLE_HEADER)) == len(RUN_TABLE_HEADER)

    def test_core_columns_present(self):
        for name in (
            "run_id", "kind", "design", "benchmark", "sets", "assoc",
            "line_size", "misses", "cycles", "cost", "area", "wall_s",
            "kernel_s", "retries", "timeouts", "fallbacks", "cache_hits",
            "bytes_shipped",
        ):
            assert name in RUN_TABLE_HEADER, name

    def test_docs_table_lists_every_column(self):
        from pathlib import Path

        doc = Path(__file__).resolve().parents[2] / "docs"
        text = (doc / "RUN_TABLE_COLUMNS.md").read_text()
        for name in RUN_TABLE_HEADER:
            assert f"`{name}`" in text, name


class TestRows:
    def test_rows_are_all_strings_in_header_order(self):
        rows = run_table_rows(RUN, ROWS)
        assert len(rows) == 2
        for row in rows:
            assert tuple(row) == RUN_TABLE_HEADER
            assert all(isinstance(v, str) for v in row.values())
        assert rows[0]["run_id"] == "run-x"
        assert rows[0]["misses"] == "42.5"
        assert rows[1]["estimated"] == "1"

    def test_missing_fields_render_empty(self):
        rows = run_table_rows(RUN, [{"design": "d"}])
        assert rows[0]["misses"] == ""
        assert rows[0]["sets"] == ""


class TestCSV:
    def test_requires_store_or_documents(self):
        with pytest.raises(ValueError, match="needs"):
            run_table_csv()

    def test_csv_from_documents(self):
        text = run_table_csv(run=RUN, rows=ROWS)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["design"] == "S64A1L16"

    def test_csv_round_trips_store_rows_bit_identically(self, store):
        from repro.analytics.runs import get_run, get_run_rows

        record_run(store, RUN, ROWS)
        text = run_table_csv(store, "run-x")
        parsed = list(csv.DictReader(io.StringIO(text)))
        expected = run_table_rows(
            get_run(store, "run-x"), get_run_rows(store, "run-x")
        )
        assert parsed == expected
        # And the numeric cells reparse to the exact stored floats.
        assert float(parsed[0]["misses"]) == 42.5
        assert float(parsed[0]["wall_s"]) == 0.125

    def test_csv_header_line(self):
        text = run_table_csv(run=RUN, rows=[])
        assert text.splitlines()[0] == ",".join(RUN_TABLE_HEADER)
