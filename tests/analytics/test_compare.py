"""Unit tests for run comparison and Pareto frontier extraction."""

import pytest

from repro.analytics.compare import compare_runs, frontier_of_rows
from repro.analytics.runs import record_run
from repro.errors import ServiceError
from repro.service.store import ResultStore


@pytest.fixture
def store(tmp_path):
    s = ResultStore(tmp_path / "compare.sqlite")
    try:
        yield s
    finally:
        s.close()


def put(store, run_id, rows, started=1.0):
    record_run(
        store,
        {
            "id": run_id,
            "kind": "sweep",
            "state": "done",
            "started": started,
            "finished": started + 1.0,
            "wall_s": 1.0,
            "rows": len(rows),
            "journal": {},
        },
        rows,
    )


def cache_row(sets, misses, **extra):
    return {
        "design": f"S{sets}A1L16",
        "benchmark": "epic",
        "sets": sets,
        "assoc": 1,
        "line_size": 16,
        "misses": misses,
        **extra,
    }


class TestFrontier:
    def test_cache_rows_use_size_misses_axes(self):
        rows = [
            cache_row(64, 100.0),   # 1 KiB, 100 misses
            cache_row(128, 50.0),   # 2 KiB, 50 misses
            cache_row(256, 60.0),   # dominated: bigger AND more misses
        ]
        frontier = frontier_of_rows(rows)
        designs = {p["design"] for p in frontier}
        assert designs == {"S64A1L16", "S128A1L16"}
        assert frontier[0]["axes"] == ["size_bytes", "misses"]

    def test_system_rows_use_cost_cycles_axes(self):
        rows = [
            {"design": "d1", "cost": 10.0, "cycles": 100.0},
            {"design": "d2", "cost": 20.0, "cycles": 50.0},
            {"design": "d3", "cost": 25.0, "cycles": 60.0},  # dominated
        ]
        frontier = frontier_of_rows(rows)
        assert {p["design"] for p in frontier} == {"d1", "d2"}
        assert frontier[0]["axes"] == ["cost", "cycles"]

    def test_rows_without_axes_ignored(self):
        assert frontier_of_rows([{"design": "d", "accesses": 5}]) == []


class TestCompare:
    def test_identical_runs(self, store):
        rows = [cache_row(64, 100.0), cache_row(128, 50.0)]
        put(store, "a", rows, started=1.0)
        put(store, "b", rows, started=2.0)
        doc = compare_runs(store, "a", "b")
        assert doc["rows"]["identical"]
        assert doc["frontier"]["identical"]
        assert doc["rows"]["common"] == 2
        assert doc["rows"]["deltas"] == []

    def test_metric_drift_reported(self, store):
        put(store, "a", [cache_row(64, 100.0)], started=1.0)
        put(store, "b", [cache_row(64, 105.0)], started=2.0)
        doc = compare_runs(store, "a", "b")
        assert not doc["rows"]["identical"]
        (delta,) = doc["rows"]["deltas"]
        assert delta["design"] == "S64A1L16"
        assert delta["d_misses"] == pytest.approx(5.0)
        assert doc["rows"]["max_abs_delta"]["misses"] == pytest.approx(5.0)

    def test_disjoint_rows_reported(self, store):
        put(store, "a", [cache_row(64, 100.0)], started=1.0)
        put(store, "b", [cache_row(128, 50.0)], started=2.0)
        doc = compare_runs(store, "a", "b")
        assert doc["rows"]["only_a"] == 1
        assert doc["rows"]["only_b"] == 1
        assert not doc["rows"]["identical"]

    def test_frontier_shift_detected(self, store):
        put(
            store,
            "a",
            [cache_row(64, 100.0), cache_row(128, 50.0)],
            started=1.0,
        )
        # In run b the big cache got *worse* than the small one, so the
        # frontier loses a point.
        put(
            store,
            "b",
            [cache_row(64, 100.0), cache_row(128, 150.0)],
            started=2.0,
        )
        doc = compare_runs(store, "a", "b")
        assert not doc["frontier"]["identical"]
        assert len(doc["frontier"]["a"]) == 2
        assert len(doc["frontier"]["b"]) == 1

    def test_unknown_run_raises(self, store):
        put(store, "a", [cache_row(64, 1.0)])
        with pytest.raises(ServiceError, match="unknown run id"):
            compare_runs(store, "a", "missing")
