"""Unit tests for the metrics ring and the dashboard renderer."""

from html.parser import HTMLParser

import pytest

from repro.analytics.dashboard import render_dashboard, sparkline_svg
from repro.analytics.metrics import MetricsRing


class TestMetricsRing:
    def test_capacity_bounds_retention(self):
        ring = MetricsRing(capacity=3)
        for i in range(10):
            ring.sample({"queued": i})
        assert len(ring) == 3
        assert ring.total == 10
        assert [s["queued"] for s in ring.samples()] == [7, 8, 9]

    def test_samples_are_stamped_and_copied(self):
        ring = MetricsRing()
        ring.sample({"queued": 1})
        snap = ring.samples()
        assert "ts" in snap[0]
        snap[0]["queued"] = 999
        assert ring.samples()[0]["queued"] == 1

    def test_series_tolerates_missing_fields(self):
        ring = MetricsRing()
        ring.sample({"queued": 2})
        ring.sample({"running": 1})
        assert ring.series("queued") == [2.0, 0.0]

    def test_last(self):
        ring = MetricsRing()
        assert ring.last() is None
        ring.sample({"queued": 5})
        assert ring.last()["queued"] == 5

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            MetricsRing(capacity=0)


class TestSparkline:
    def test_empty_series_still_svg(self):
        svg = sparkline_svg([])
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_flat_and_varying_series(self):
        assert "polyline" in sparkline_svg([1.0, 1.0, 1.0])
        assert "polyline" in sparkline_svg([0.0, 5.0, 2.5])


class _Balanced(HTMLParser):
    VOID = {"meta", "link", "br", "hr", "img", "input", "polyline", "path"}

    def __init__(self):
        super().__init__()
        self.stack = []
        self.bad = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if self.stack and self.stack[-1] == tag:
            self.stack.pop()
        else:
            self.bad.append(tag)


RUNS = [
    {
        "id": "run-abc",
        "kind": "sweep",
        "state": "done",
        "benchmark": "epic",
        "rows": 4,
        "wall_s": 0.5,
        "started": 1.0,
        "journal": {"passes": 2, "cache_hits": 0},
    },
    {
        "id": "run-def",
        "kind": "explore",
        "state": "failed",
        "benchmark": None,
        "rows": 0,
        "wall_s": 0.1,
        "started": 2.0,
        "journal": {},
    },
]
SAMPLES = [
    {"ts": 1.0, "queued": 2, "running": 1, "done": 0, "failed": 0,
     "entries": 10, "db_bytes": 4096, "workers": 1, "hit_rate": 0.0},
    {"ts": 2.0, "queued": 0, "running": 1, "done": 2, "failed": 0,
     "entries": 14, "db_bytes": 8192, "workers": 1, "hit_rate": 0.5},
]


class TestDashboard:
    def render(self):
        return render_dashboard(
            RUNS,
            SAMPLES,
            store_stats={"entries": 14, "db_bytes": 8192},
            queue_counts={"queued": 0, "running": 1, "done": 2, "failed": 0},
            workers=1,
            db_path="/tmp/x.sqlite",
            interval=5.0,
        )

    def test_page_is_balanced_html(self):
        page = self.render()
        assert page.lstrip().startswith("<!DOCTYPE html>")
        audit = _Balanced()
        audit.feed(page)
        audit.close()
        assert audit.bad == []
        assert audit.stack == []

    def test_runs_and_states_listed(self):
        page = self.render()
        assert "run-abc" in page
        assert "run-def" in page
        assert "failed" in page

    def test_escapes_hostile_values(self):
        page = render_dashboard(
            [
                {
                    "id": "<script>alert(1)</script>",
                    "kind": "sweep",
                    "state": "done",
                    "rows": 0,
                    "wall_s": 0.0,
                    "started": 1.0,
                    "journal": {},
                }
            ],
            [],
            store_stats={},
            queue_counts={},
        )
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_empty_everything_renders(self):
        page = render_dashboard([], [], store_stats={}, queue_counts={})
        assert page.lstrip().startswith("<!DOCTYPE html>")
