"""Acceptance: recording never perturbs results, even under faults.

Reuses the fault-injection machinery from ``scripts/ci_fault_sweep.py``
(same configs, trace, and fault plan): a fault-injected sweep must
produce a run whose retry/fallback columns match its journal window,
and ``compare_runs`` between the faulty and fault-free runs must report
identical rows and identical Pareto frontiers — bit-identity preserved.
"""

import sys
from pathlib import Path

import pytest

from repro.analytics.compare import compare_runs
from repro.analytics.runs import RunRecorder, get_run, get_run_rows
from repro.cache.sweep import sweep_design_space
from repro.runtime import ExecutorPolicy, FaultPlan, RunJournal
from repro.service.store import ResultStore

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

from ci_fault_sweep import SWEEP_CONFIGS, sweep_trace  # noqa: E402


@pytest.fixture
def store(tmp_path):
    s = ResultStore(tmp_path / "fault_runs.sqlite")
    try:
        yield s
    finally:
        s.close()


def record_sweep(store, run_id, policy=None):
    journal = RunJournal()
    with RunRecorder(
        store, "sweep", journal=journal, run_id=run_id, benchmark="synthetic"
    ) as rec:
        results = sweep_design_space(
            SWEEP_CONFIGS,
            sweep_trace if policy is not None else sweep_trace(),
            policy=policy,
            journal=journal,
        )
        rec.add_sweep_results(results, benchmark="synthetic")
    return results, journal


class TestFaultInjectedRecording:
    def test_faulty_run_matches_clean_run(self, store):
        clean, _ = record_sweep(store, "clean")
        policy = ExecutorPolicy(
            max_workers=2,
            retries=2,
            backoff=0.0,
            fault=FaultPlan("exit", match="32", times=1),
        )
        faulty, journal = record_sweep(store, "faulty", policy=policy)

        # Bit-identity first: recording and faults perturbed nothing.
        assert faulty == clean

        # The faulty run's columns must match its journal window.
        run = get_run(store, "faulty")
        retries = len(journal.select("retry"))
        fallbacks = len(journal.select("fallback"))
        assert retries + fallbacks > 0, "fault plan injected nothing"
        assert run["journal"]["retries"] == retries
        assert run["journal"]["fallbacks"] == fallbacks
        for row in get_run_rows(store, "faulty"):
            assert row["retries"] == retries
            assert row["fallbacks"] == fallbacks

        # The clean run saw no recovery events.
        clean_run = get_run(store, "clean")
        assert clean_run["journal"]["retries"] == 0
        assert clean_run["journal"]["fallbacks"] == 0

        # And the comparison document agrees: identical rows, identical
        # frontiers, no metric drift.
        doc = compare_runs(store, "clean", "faulty")
        assert doc["rows"]["identical"]
        assert all(v == 0.0 for v in doc["rows"]["max_abs_delta"].values())
        assert doc["frontier"]["identical"]
        assert doc["frontier"]["a"], "frontier unexpectedly empty"

    def test_recording_is_observational(self, store):
        """The same sweep, recorded and unrecorded, yields equal maps."""
        unrecorded = sweep_design_space(SWEEP_CONFIGS, sweep_trace())
        recorded, _ = record_sweep(store, "observed")
        assert recorded == unrecorded
