"""Unit tests for the run-table recorder and store accessors."""

import pytest

from repro.analytics.runs import (
    RunRecorder,
    delete_run,
    derive_journal_columns,
    design_label,
    gc_runs,
    get_run,
    get_run_rows,
    list_runs,
    record_run,
    supports_runs,
)
from repro.errors import ServiceError
from repro.runtime.journal import RunJournal
from repro.service.store import ResultStore


@pytest.fixture
def store(tmp_path):
    s = ResultStore(tmp_path / "runs.sqlite")
    try:
        yield s
    finally:
        s.close()


def make_run(run_id="run-1", kind="sweep", started=100.0, **extra):
    return {
        "id": run_id,
        "kind": kind,
        "state": "done",
        "started": started,
        "finished": started + 1.0,
        "wall_s": 1.0,
        "rows": 1,
        "journal": {"passes": 1},
        **extra,
    }


class TestRecordAndFetch:
    def test_round_trip_one_run(self, store):
        rows = [
            {
                "design": "s64/a2/l16",
                "benchmark": "epic",
                "sets": 64,
                "assoc": 2,
                "line_size": 16,
                "misses": 123.0,
                "accesses": 1000,
            }
        ]
        record_run(store, make_run(benchmark="epic"), rows)
        run = get_run(store, "run-1")
        assert run["kind"] == "sweep"
        assert run["benchmark"] == "epic"
        assert run["journal"] == {"passes": 1}
        got = get_run_rows(store, "run-1")
        assert len(got) == 1
        assert got[0]["design"] == "s64/a2/l16"
        assert got[0]["misses"] == 123.0
        assert got[0]["sets"] == 64

    def test_rerecord_same_id_replaces(self, store):
        record_run(store, make_run(), [{"design": "a", "misses": 1.0}])
        record_run(
            store,
            make_run(),
            [{"design": "b", "misses": 2.0}, {"design": "c", "misses": 3.0}],
        )
        assert len(list_runs(store)) == 1
        rows = get_run_rows(store, "run-1")
        assert [r["design"] for r in rows] == ["b", "c"]

    def test_run_without_id_rejected(self, store):
        with pytest.raises(ServiceError, match="id"):
            record_run(store, {"kind": "sweep"})

    def test_unknown_run_raises(self, store):
        with pytest.raises(ServiceError, match="unknown run id"):
            get_run(store, "nope")

    def test_list_filters(self, store):
        record_run(store, make_run("r1", kind="sweep", started=1.0))
        record_run(store, make_run("r2", kind="explore", started=2.0))
        record_run(
            store, make_run("r3", kind="explore", started=3.0, state="failed")
        )
        assert {r["id"] for r in list_runs(store)} == {"r1", "r2", "r3"}
        assert {r["id"] for r in list_runs(store, kind="explore")} == {
            "r2",
            "r3",
        }
        assert [r["id"] for r in list_runs(store, state="failed")] == ["r3"]
        # Newest first, limited.
        assert [r["id"] for r in list_runs(store, limit=2)] == ["r3", "r2"]


class TestRecorder:
    def test_records_rows_and_journal_window(self, store):
        journal = RunJournal()
        journal.record("pass", line_size=16, wall_s=1.0, kernel_s=0.25)
        with RunRecorder(
            store, "sweep", journal=journal, benchmark="epic"
        ) as rec:
            journal.record("pass", line_size=16, wall_s=0.5, kernel_s=0.5)
            journal.record("checkpoint", action="store", key="k")
            rec.add_row(
                sets=64, assoc=1, line_size=16, misses=9.0, benchmark="epic"
            )
        run = get_run(store, rec.run_id)
        # The pre-enter pass is outside the recorder's window.
        assert run["journal"]["passes"] == 1
        assert run["journal"]["wall_s"] == 0.5
        assert run["journal"]["checkpoint_stores"] == 1
        (row,) = get_run_rows(store, rec.run_id)
        assert row["wall_s"] == 0.5
        assert row["kernel_s"] == 0.5
        assert row["cache_hits"] == 0

    def test_wall_split_across_rows_sharing_line_size(self, store):
        journal = RunJournal()
        with RunRecorder(store, "sweep", journal=journal) as rec:
            journal.record("pass", line_size=16, wall_s=1.0, kernel_s=0.4)
            rec.add_row(sets=64, assoc=1, line_size=16, misses=1.0)
            rec.add_row(sets=128, assoc=1, line_size=16, misses=2.0)
        rows = get_run_rows(store, rec.run_id)
        assert [r["wall_s"] for r in rows] == [0.5, 0.5]
        assert sum(r["kernel_s"] for r in rows) == pytest.approx(0.4)

    def test_exception_records_failed_state(self, store):
        journal = RunJournal()
        with pytest.raises(RuntimeError):
            with RunRecorder(store, "sweep", journal=journal) as rec:
                rec.add_row(sets=1, assoc=1, line_size=16, misses=0.0)
                raise RuntimeError("boom")
        run = get_run(store, rec.run_id)
        assert run["state"] == "failed"
        assert "boom" in run["error"]

    def test_finish_is_idempotent(self, store):
        with RunRecorder(store, "sweep", journal=RunJournal()) as rec:
            pass
        first = rec.finish()
        assert rec.finish() is first
        assert len(list_runs(store)) == 1

    def test_bad_state_rejected(self, store):
        rec = RunRecorder(store, "sweep", journal=RunJournal())
        with pytest.raises(ServiceError, match="unknown run state"):
            rec.finish(state="exploded")

    def test_custom_sink_store(self):
        class Sink:
            def __init__(self):
                self.calls = []

            def record_run(self, run, rows):
                self.calls.append((run, rows))

        sink = Sink()
        assert supports_runs(sink)
        with RunRecorder(sink, "explore", journal=RunJournal()) as rec:
            rec.add_row(misses=1.0, line_size=32)
        assert len(sink.calls) == 1
        run, rows = sink.calls[0]
        assert run["id"] == rec.run_id
        assert len(rows) == 1

    def test_plain_object_not_supported(self):
        assert not supports_runs(object())
        with pytest.raises(ServiceError, match="record_run"):
            RunRecorder(object(), "sweep")


class TestDeriveJournalColumns:
    def test_empty_window(self):
        cols = derive_journal_columns([])
        assert cols["events"] == 0
        assert cols["passes"] == 0
        assert cols["cache_hits"] == 0

    def test_mixed_vocabulary(self):
        events = [
            {"event": "pass", "line_size": 16, "wall_s": 1.0,
             "kernel_s": 0.5},
            {"event": "sampled_pass", "line_size": 32, "wall_s": 0.25},
            {"event": "retry", "attempt": 1},
            {"event": "timeout", "seconds": 5},
            {"event": "fallback", "to": "serial"},
            {"event": "checkpoint", "action": "hit"},
            {"event": "checkpoint", "action": "miss"},
            {"event": "checkpoint", "action": "store"},
            {"event": "service_dedup", "from_store": 3, "simulated": 2},
            {"event": "shm_attach", "bytes_shipped": 10,
             "bytes_mapped": 100},
            {"event": "job", "id": "j1"},
            {"event": "job_failed", "id": "j2"},
        ]
        cols = derive_journal_columns(events)
        assert cols["passes"] == 2
        assert cols["wall_s"] == pytest.approx(1.25)
        assert cols["kernel_s"] == pytest.approx(0.5)
        assert cols["retries"] == 1
        assert cols["timeouts"] == 1
        assert cols["fallbacks"] == 1
        assert cols["checkpoint_hits"] == 1
        assert cols["checkpoint_stores"] == 1
        assert cols["cache_hits"] == 1 + 3  # checkpoint hits + store dedup
        assert cols["cache_misses"] == 1 + 2
        assert cols["bytes_shipped"] == 10
        assert cols["jobs_completed"] == 1
        assert cols["jobs_failed"] == 1
        assert cols["by_line_size"]["16"]["passes"] == 1
        assert cols["by_line_size"]["32"]["passes"] == 1


class TestLifecycle:
    def test_delete_run(self, store):
        record_run(store, make_run(), [{"design": "a", "misses": 1.0}])
        assert delete_run(store, "run-1")
        assert not delete_run(store, "run-1")
        assert list_runs(store) == []

    def test_gc_noop_without_criteria(self, store):
        record_run(store, make_run("r1"))
        assert gc_runs(store) == 0
        assert len(list_runs(store)) == 1

    def test_gc_keep_protects_newest(self, store):
        for i in range(5):
            record_run(store, make_run(f"r{i}", started=float(i + 1)))
        assert gc_runs(store, keep=2) == 3
        assert {r["id"] for r in list_runs(store)} == {"r3", "r4"}

    def test_gc_older_than(self, store):
        import time

        now = time.time()
        record_run(store, make_run("old", started=now - 1000.0))
        record_run(store, make_run("new", started=now))
        assert gc_runs(store, older_than=500.0) == 1
        assert [r["id"] for r in list_runs(store)] == ["new"]

    def test_gc_keep_and_older_than_combined(self, store):
        import time

        now = time.time()
        record_run(store, make_run("ancient", started=now - 1000.0))
        record_run(store, make_run("older", started=now - 900.0))
        record_run(store, make_run("fresh", started=now))
        # keep=1 protects the newest; older_than dooms only aged rest.
        assert gc_runs(store, older_than=500.0, keep=1) == 2
        assert [r["id"] for r in list_runs(store)] == ["fresh"]


class TestDesignLabel:
    def test_cache_label(self):
        assert design_label(64, 2, 16) == "S64A2L16"
