"""Unit tests for repro.iformat.format_synth."""

import pytest

from repro.errors import EncodingError
from repro.iformat.format_synth import Template, synthesize_format
from repro.isa.operations import OpClass
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P2111, P6332


@pytest.fixture(scope="module")
def narrow_format():
    return synthesize_format(MachineDescription(P1111))


@pytest.fixture(scope="module")
def wide_format():
    return synthesize_format(MachineDescription(P6332))


class TestTemplate:
    def test_covers(self):
        template = Template((2, 1, 0, 1))
        assert template.covers({OpClass.INT: 2, OpClass.BRANCH: 1})
        assert not template.covers({OpClass.MEMORY: 1})
        assert not template.covers({OpClass.INT: 3})

    def test_slot_count_and_total(self):
        template = Template((2, 1, 0, 1))
        assert template.slot_count(OpClass.INT) == 2
        assert template.slot_count(OpClass.MEMORY) == 0
        assert template.total_slots == 4

    def test_str(self):
        assert str(Template((1, 0, 1, 0))) == "I1/M1"


class TestSynthesis:
    def test_full_template_present(self, narrow_format, wide_format):
        assert Template((1, 1, 1, 1)) in narrow_format.templates
        assert Template((6, 3, 3, 2)) in wide_format.templates

    def test_singles_present(self, wide_format):
        for i in range(4):
            slots = [0, 0, 0, 0]
            slots[i] = 1
            assert Template(tuple(slots)) in wide_format.templates

    def test_narrow_machine_has_pair_templates(self, narrow_format):
        assert Template((1, 0, 1, 0)) in narrow_format.templates

    def test_wide_machine_lacks_pair_templates(self, wide_format):
        # Width > MAX_WIDTH_WITH_PAIR_TEMPLATES: no two-slot templates
        # beyond what the halving chain provides.
        assert Template((1, 0, 1, 0)) not in wide_format.templates

    def test_dispersal_bits_scale_with_width(self, narrow_format, wide_format):
        assert wide_format.dispersal_bits > narrow_format.dispersal_bits


class TestSelection:
    def test_single_int_op_uses_smallest_cover(self, narrow_format):
        chosen = narrow_format.select_template({OpClass.INT: 1})
        assert chosen == Template((1, 0, 0, 0))

    def test_selection_is_minimal_width(self, narrow_format):
        op_counts = {OpClass.INT: 1, OpClass.MEMORY: 1}
        chosen = narrow_format.select_template(op_counts)
        width = narrow_format.template_width_bits(chosen)
        for template in narrow_format.templates:
            if template.covers(op_counts):
                assert width <= narrow_format.template_width_bits(template)

    def test_uncoverable_counts_raise(self, narrow_format):
        with pytest.raises(EncodingError, match="no template"):
            narrow_format.select_template({OpClass.INT: 99})

    def test_width_bytes_rounds_up(self, narrow_format):
        for template in narrow_format.templates:
            bits = narrow_format.template_width_bits(template)
            assert narrow_format.template_width_bytes(template) >= (bits + 7) // 8

    def test_noop_is_smallest_instruction(self, narrow_format):
        noop = narrow_format.noop_instruction_bytes()
        widths = [
            narrow_format.template_width_bytes(t)
            for t in narrow_format.templates
        ]
        assert noop == min(widths)

    def test_max_noop_run(self, narrow_format):
        assert narrow_format.max_noop_run == 3  # 2-bit field


class TestDilationSource:
    def test_wide_encoding_is_less_dense(self):
        """The same 2-op instruction costs more bytes on a wide machine."""
        narrow = synthesize_format(MachineDescription(P1111))
        wide = synthesize_format(MachineDescription(P6332))
        counts = {OpClass.INT: 1, OpClass.MEMORY: 1}
        narrow_bytes = narrow.template_width_bytes(
            narrow.select_template(counts)
        )
        wide_bytes = wide.template_width_bytes(wide.select_template(counts))
        assert wide_bytes > 1.5 * narrow_bytes

    def test_intermediate_machine_between(self):
        m2111 = synthesize_format(MachineDescription(P2111))
        narrow = synthesize_format(MachineDescription(P1111))
        counts = {OpClass.INT: 1}
        assert m2111.template_width_bits(
            m2111.select_template(counts)
        ) >= narrow.template_width_bits(narrow.select_template(counts))
