"""Unit tests for repro.iformat.layout (profile-guided code layout)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.iformat.assembler import assemble
from repro.iformat.layout import (
    Profile,
    layout_program,
    profile_from_events,
)
from repro.iformat.linker import link
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111
from repro.trace.emulator import emulate
from repro.trace.events import EventTraceBuilder
from repro.vliwcomp.compile import compile_program


def synthetic_events(visits):
    """visits: list of (proc, block)."""
    builder = EventTraceBuilder()
    for proc, block in visits:
        builder.begin_visit(proc, block)
        builder.end_visit()
    return builder.build()


class TestProfileFromEvents:
    def test_counts_edges_and_weights(self):
        events = synthetic_events(
            [("f", 0), ("f", 1), ("f", 0), ("f", 1), ("f", 2)]
        )
        profile = profile_from_events(events)
        assert profile.edges[("f", 0, 1)] == 2
        assert profile.edges[("f", 1, 0)] == 1
        assert profile.proc_weight["f"] == 5
        assert profile.block_weight[("f", 1)] == 2

    def test_cross_procedure_transitions_are_not_edges(self):
        events = synthetic_events([("f", 0), ("g", 0), ("f", 1)])
        profile = profile_from_events(events)
        assert ("f", 0, 1) not in profile.edges
        assert profile.proc_weight == {"f": 2, "g": 1}


class TestLayoutProgram:
    def test_hot_path_becomes_sequential(self, tiny):
        # Hand-build a profile where some procedure's hot path is
        # entry -> block[3] -> block[1].
        name, proc = next(
            (n, p)
            for n, p in tiny.program.procedures.items()
            if len(p.blocks) >= 4
        )
        ids = [blk.block_id for blk in proc.blocks]
        profile = Profile(
            edges={
                (name, ids[0], ids[3]): 100,
                (name, ids[3], ids[1]): 90,
            },
            proc_weight={n: 1 for n in tiny.program.procedures},
            block_weight={(name, ids[0]): 100},
        )
        layout = layout_program(tiny.program, profile)
        order = layout[name]
        assert order.index(ids[3]) == order.index(ids[0]) + 1
        assert order.index(ids[1]) == order.index(ids[3]) + 1
        # Always a permutation.
        assert sorted(order) == sorted(ids)

    def test_hot_procedures_emitted_first(self, tiny):
        profile = Profile(
            edges={},
            proc_weight={"f002": 1000, "main": 10},
            block_weight={},
        )
        layout = layout_program(tiny.program, profile)
        names = list(layout)
        assert names[0] == "f002"
        assert names.index("main") < len(names)  # present

    def test_unexecuted_procedures_keep_program_order(self, tiny):
        profile = Profile(edges={}, proc_weight={}, block_weight={})
        layout = layout_program(tiny.program, profile)
        for name, proc in tiny.program.procedures.items():
            assert layout[name] == [blk.block_id for blk in proc.blocks]

    def test_real_profile_round_trip(self, tiny):
        """Layout from a real emulation must be a legal linker input."""
        mdes = MachineDescription(P1111)
        compiled = compile_program(tiny.program, mdes)
        events = emulate(tiny.program, tiny.streams, seed=5, max_visits=2000)
        profile = profile_from_events(events)
        layout = layout_program(tiny.program, profile)
        binary = link(
            tiny.program,
            assemble(compiled),
            packet_bytes=16,
            layout=layout,
        )
        # Every block placed once, no overlap.
        images = sorted(binary.images, key=lambda im: im.start)
        assert len(images) == tiny.program.num_blocks
        for a, b in zip(images, images[1:]):
            assert a.end <= b.start


class TestLinkerLayoutValidation:
    def test_missing_procedure_rejected(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assembled = assemble(compiled)
        with pytest.raises(TraceError, match="cover"):
            link(tiny.program, assembled, packet_bytes=16, layout={"main": [0]})

    def test_non_permutation_rejected(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assembled = assemble(compiled)
        layout = {
            name: [blk.block_id for blk in proc.blocks]
            for name, proc in tiny.program.procedures.items()
        }
        layout["main"] = layout["main"][:-1]  # drop a block
        with pytest.raises(TraceError, match="permutation"):
            link(tiny.program, assembled, packet_bytes=16, layout=layout)
