"""Unit tests for repro.iformat.assembler."""

from repro.iformat.assembler import assemble
from repro.iformat.format_synth import synthesize_format
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P6332
from repro.vliwcomp.compile import compile_program


class TestAssemble:
    def test_every_block_assembled(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assembled = assemble(compiled)
        assert set(assembled.blocks) == set(compiled.blocks)
        assert all(b.size_bytes > 0 for b in assembled.blocks.values())

    def test_text_bytes_is_block_sum(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assembled = assemble(compiled)
        assert assembled.text_bytes == sum(
            b.size_bytes for b in assembled.blocks.values()
        )

    def test_explicit_format_is_used(self, tiny):
        mdes = MachineDescription(P1111)
        compiled = compile_program(tiny.program, mdes)
        fmt = synthesize_format(mdes)
        assembled = assemble(compiled, fmt)
        assert assembled.iformat is fmt

    def test_wide_machine_text_is_larger(self, tiny):
        narrow = assemble(
            compile_program(tiny.program, MachineDescription(P1111))
        )
        wide = assemble(
            compile_program(tiny.program, MachineDescription(P6332))
        )
        assert wide.text_bytes > narrow.text_bytes

    def test_block_size_at_least_instruction_count_bytes(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assembled = assemble(compiled)
        for key, blk in assembled.blocks.items():
            # Every instruction occupies at least one byte.
            assert blk.size_bytes >= blk.instructions

    def test_instruction_counts_match_schedule(self, tiny):
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        assembled = assemble(compiled)
        for key, ablock in assembled.blocks.items():
            assert ablock.instructions == compiled.blocks[key].num_instructions
