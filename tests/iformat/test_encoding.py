"""Unit tests for repro.iformat.encoding (bit-level codec)."""

import pytest

from repro.errors import EncodingError
from repro.iformat.encoding import OPCODES, InstructionCodec
from repro.iformat.format_synth import synthesize_format
from repro.isa.operations import (
    OpClass,
    Operation,
    make_branch,
    make_float,
    make_int,
    make_load,
    make_store,
)
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P6332
from repro.machine.processor import make_processor


@pytest.fixture(scope="module", params=["1111", "6332", "pred"])
def codec(request):
    if request.param == "pred":
        processor = make_processor(2, 1, 1, 1, has_predication=True)
    elif request.param == "1111":
        processor = P1111
    else:
        processor = P6332
    mdes = MachineDescription(processor)
    return InstructionCodec(mdes, synthesize_format(mdes))


SAMPLES = [
    [make_int(3, (1, 2))],
    [make_int(3, (1, 2)), make_load(4, addr_src=7, stream=2)],
    [make_float(5, (3, 4)), make_branch((5,))],
    [make_store(value_src=2, addr_src=9), make_int(1, (0, 0))],
    [
        make_int(1, (2, 3)),
        make_float(4, (5, 6)),
        make_load(7, addr_src=8),
        make_branch((1,)),
    ],
]


class TestRoundTrip:
    @pytest.mark.parametrize("ops", SAMPLES, ids=range(len(SAMPLES)))
    def test_fields_survive(self, codec, ops):
        data = codec.encode(ops, noop_run=2)
        decoded = codec.decode(data)
        assert decoded.noop_run == 2
        occupied = decoded.occupied_slots()
        assert len(occupied) == len(ops)
        by_class = {}
        for op in ops:
            by_class.setdefault(op.opclass, []).append(op)
        for slot in occupied:
            original = by_class[slot.opclass].pop(0)
            mask = (
                1 << codec.mdes.register_specifier_bits(slot.opclass)
            ) - 1
            assert slot.opcode == original.mnemonic()
            expected_dest = (
                original.dests[0] if original.dests else 0
            ) & mask
            assert slot.dest == expected_dest
            srcs = list(original.srcs) + [0, 0]
            assert slot.src1 == srcs[0] & mask
            assert slot.src2 == srcs[1] & mask

    def test_encoded_length_matches_assembler_accounting(self, codec):
        for ops in SAMPLES:
            counts = {}
            for op in ops:
                counts[op.opclass] = counts.get(op.opclass, 0) + 1
            template = codec.iformat.select_template(counts)
            data = codec.encode(ops)
            assert len(data) == codec.iformat.template_width_bytes(template)

    def test_speculative_tag_round_trips(self, codec):
        spec_load = Operation(
            OpClass.MEMORY,
            dests=(3,),
            srcs=(4,),
            is_load=True,
            speculative=True,
        )
        decoded = codec.decode(codec.encode([spec_load]))
        (slot,) = decoded.occupied_slots()
        if codec.mdes.processor.has_speculation:
            assert slot.speculative
        else:
            assert not slot.speculative

    def test_empty_instruction_is_all_nops(self, codec):
        decoded = codec.decode(codec.encode([]))
        assert decoded.occupied_slots() == []


class TestErrors:
    def test_noop_run_out_of_range(self, codec):
        with pytest.raises(EncodingError, match="noop run"):
            codec.encode([make_int(1)], noop_run=99)

    def test_truncated_bytes_rejected(self, codec):
        data = codec.encode(SAMPLES[4] if len(SAMPLES) > 4 else SAMPLES[0])
        with pytest.raises(EncodingError, match="truncated|range"):
            codec.decode(data[:1])


class TestDisassembly:
    def test_readable_output(self, codec):
        text = codec.disassemble(
            codec.decode(codec.encode([make_int(3, (1, 2))], noop_run=1))
        )
        assert "ADD r3, r1, r2" in text
        assert "+1 noops" in text

    def test_nop_instruction(self, codec):
        assert "NOP" in codec.disassemble(codec.decode(codec.encode([])))


class TestOpcodes:
    def test_opcode_space_consistent(self):
        assert OPCODES["NOP"] == 0
        assert len(set(OPCODES.values())) == len(OPCODES)
        assert all(0 <= v < 128 for v in OPCODES.values())
