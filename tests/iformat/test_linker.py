"""Unit tests for repro.iformat.linker."""

import pytest

from repro.cache.config import WORD_BYTES
from repro.errors import TraceError
from repro.iformat.assembler import assemble
from repro.iformat.linker import TEXT_BASE, Binary, BlockImage, link
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111
from repro.vliwcomp.compile import compile_program


@pytest.fixture(scope="module")
def linked(tiny_module):
    program = tiny_module.program
    compiled = compile_program(program, MachineDescription(P1111))
    assembled = assemble(compiled)
    return program, link(
        program, assembled, packet_bytes=16, processor_name="1111"
    )


@pytest.fixture(scope="module")
def tiny_module():
    from repro.workloads.suite import tiny_workload

    return tiny_workload()


class TestLayout:
    def test_blocks_do_not_overlap(self, linked):
        _, binary = linked
        images = sorted(binary.images, key=lambda im: im.start)
        for a, b in zip(images, images[1:]):
            assert a.end <= b.start

    def test_everything_word_aligned(self, linked):
        _, binary = linked
        for image in binary.images:
            assert image.start % WORD_BYTES == 0
            assert image.size % WORD_BYTES == 0

    def test_procedure_entries_packet_aligned(self, linked):
        program, binary = linked
        for proc in program.procedures.values():
            entry = binary.block_image(proc.name, proc.entry.block_id)
            assert entry.start % 16 == 0

    def test_branch_targets_packet_aligned(self, linked):
        program, binary = linked
        for proc in program.procedures.values():
            order = {blk.block_id: i for i, blk in enumerate(proc.blocks)}
            for edge in proc.edges:
                if order[edge.dst] != order[edge.src] + 1:
                    image = binary.block_image(proc.name, edge.dst)
                    assert image.start % 16 == 0

    def test_text_size_spans_all_blocks(self, linked):
        _, binary = linked
        last_end = max(im.end for im in binary.images)
        assert binary.text_size == last_end - TEXT_BASE
        assert binary.text_end == last_end

    def test_block_range_lookup(self, linked):
        program, binary = linked
        proc = next(iter(program.procedures.values()))
        start, size = binary.block_range(proc.name, proc.entry.block_id)
        image = binary.block_image(proc.name, proc.entry.block_id)
        assert (start, size) == (image.start, image.size)


class TestErrors:
    def test_bad_packet_size(self, tiny_module):
        compiled = compile_program(
            tiny_module.program, MachineDescription(P1111)
        )
        assembled = assemble(compiled)
        with pytest.raises(TraceError, match="packet"):
            link(tiny_module.program, assembled, packet_bytes=10)

    def test_duplicate_image_rejected(self):
        binary = Binary(program_name="p", processor_name="x", base=0)
        binary.add(BlockImage("f", 0, 0, 16))
        with pytest.raises(TraceError, match="duplicate"):
            binary.add(BlockImage("f", 0, 16, 16))

    def test_empty_binary_text_size(self):
        binary = Binary(program_name="p", processor_name="x", base=64)
        assert binary.text_size == 0
