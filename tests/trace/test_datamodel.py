"""Unit tests for repro.trace.datamodel."""

import pytest

from repro.cache.config import WORD_BYTES
from repro.errors import ConfigurationError
from repro.trace.datamodel import DATA_BASE, DataAddressModel, StreamSpec
from repro.vliwcomp.regalloc import SPILL_STREAM


class TestStreamSpec:
    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError, match="pattern"):
            StreamSpec("zigzag", 1024)

    def test_tiny_region_rejected(self):
        with pytest.raises(ConfigurationError, match="one word"):
            StreamSpec("sequential", 2)

    def test_unaligned_stride_rejected(self):
        with pytest.raises(ConfigurationError, match="stride"):
            StreamSpec("sequential", 1024, stride_bytes=6)


class TestDataAddressModel:
    def make(self):
        return DataAddressModel(
            {
                0: StreamSpec("sequential", 256),
                1: StreamSpec("strided", 512, stride_bytes=32),
                2: StreamSpec("random", 1024),
                3: StreamSpec("stack", 256),
            },
            seed=9,
        )

    def test_sequential_walk_and_wrap(self):
        model = self.make()
        base = model.region_base(0)
        addrs = [model.next_address(0) for _ in range(66)]
        assert addrs[0] == base
        assert addrs[1] == base + 4
        assert addrs[64] == base  # wrapped after 256/4 = 64 words
        assert addrs[65] == base + 4

    def test_strided_walk(self):
        model = self.make()
        base = model.region_base(1)
        addrs = [model.next_address(1) for _ in range(3)]
        assert addrs == [base, base + 32, base + 64]

    def test_random_stays_in_region(self):
        model = self.make()
        base = model.region_base(2)
        for _ in range(200):
            addr = model.next_address(2)
            assert base <= addr < base + 1024
            assert addr % WORD_BYTES == 0

    def test_stack_stays_in_region(self):
        model = self.make()
        base = model.region_base(3)
        for _ in range(200):
            addr = model.next_address(3)
            assert base <= addr < base + 256

    def test_regions_disjoint_and_above_data_base(self):
        model = self.make()
        spans = []
        for stream in (SPILL_STREAM, 0, 1, 2, 3):
            base = model.region_base(stream)
            assert base >= DATA_BASE
            spans.append((base, base + model.spec(stream).region_bytes))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_spill_stream_always_available(self):
        model = DataAddressModel({}, seed=1)
        addr = model.next_address(SPILL_STREAM)
        assert addr >= DATA_BASE

    def test_unknown_stream_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown stream"):
            self.make().next_address(42)

    def test_determinism(self):
        a = self.make()
        b = self.make()
        for stream in (0, 1, 2, 3):
            assert [a.next_address(stream) for _ in range(20)] == [
                b.next_address(stream) for _ in range(20)
            ]


class TestPeek:
    def test_peek_matches_next_without_advancing(self):
        model = DataAddressModel(
            {
                0: StreamSpec("sequential", 256),
                1: StreamSpec("random", 1024),
                2: StreamSpec("stack", 256),
            },
            seed=4,
        )
        for stream in (0, 1, 2):
            peeked = model.peek_next_address(stream)
            peeked_again = model.peek_next_address(stream)
            assert peeked == peeked_again  # no state advance
            assert model.next_address(stream) == peeked

    def test_last_address_tracks_next(self):
        model = DataAddressModel({0: StreamSpec("sequential", 64)}, seed=1)
        assert model.last_address(0) == model.region_base(0)
        addr = model.next_address(0)
        assert model.last_address(0) == addr


class TestZipfPattern:
    def make(self):
        return DataAddressModel({0: StreamSpec("zipf", 64 * 1024)}, seed=11)

    def test_stays_in_region_and_aligned(self):
        model = self.make()
        base = model.region_base(0)
        for _ in range(300):
            addr = model.next_address(0)
            assert base <= addr < base + 64 * 1024
            assert addr % WORD_BYTES == 0

    def test_head_is_hot(self):
        """The first 10% of the region absorbs well over 10% of accesses."""
        model = self.make()
        base = model.region_base(0)
        hits_head = sum(
            1
            for _ in range(2000)
            if model.next_address(0) - base < 64 * 1024 // 10
        )
        assert hits_head / 2000 > 0.25

    def test_peek_matches_next(self):
        model = self.make()
        peeked = model.peek_next_address(0)
        assert model.next_address(0) == peeked

    def test_wrong_path_address_in_region(self):
        model = self.make()
        base = model.region_base(0)
        addr = model.wrong_path_address(0)
        assert base <= addr < base + 64 * 1024
