"""Unit and property tests for repro.trace.chunkstore."""

import pickle

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import TraceError
from repro.trace.chunkstore import (
    ChunkedTrace,
    ChunkedTraceWriter,
    write_chunked,
)


def random_trace(n, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 1 << 20, n, dtype=np.int64)
    sizes = rng.integers(1, 128, n, dtype=np.int64)
    return starts, sizes


class TestRoundTrip:
    def test_round_trip_property(self, tmp_path):
        @settings(max_examples=40, deadline=None)
        @given(
            n=st.integers(min_value=0, max_value=600),
            chunk_ranges=st.integers(min_value=1, max_value=97),
            codec=st.sampled_from(["zlib", "raw"]),
            seed=st.integers(min_value=0, max_value=2**16),
        )
        def check(n, chunk_ranges, codec, seed):
            starts, sizes = random_trace(n, seed)
            path = tmp_path / f"t-{n}-{chunk_ranges}-{codec}-{seed}.rct"
            with write_chunked(
                path, starts, sizes, chunk_ranges=chunk_ranges, codec=codec
            ) as trace:
                assert trace.n_ranges == n
                expected_chunks = -(-n // chunk_ranges)  # ceil
                assert trace.n_chunks == expected_chunks
                got_starts, got_sizes = trace.materialize()
                assert np.array_equal(got_starts, starts)
                assert np.array_equal(got_sizes, sizes)
                # every chunk except possibly the last is full size
                sizes_seen = [len(trace.chunk(i)[0]) for i in range(trace.n_chunks)]
                assert all(s == chunk_ranges for s in sizes_seen[:-1])
                assert sum(sizes_seen) == n

        check()

    def test_empty_trace(self, tmp_path):
        with write_chunked(tmp_path / "e.rct", [], []) as trace:
            assert trace.n_ranges == 0
            assert trace.n_chunks == 0
            starts, sizes = trace.materialize()
            assert starts.size == 0 and sizes.size == 0
            trace.verify()

    def test_single_chunk(self, tmp_path):
        starts, sizes = random_trace(10, 3)
        with write_chunked(tmp_path / "one.rct", starts, sizes) as trace:
            assert trace.n_chunks == 1
            got = trace.chunk(0)
            assert np.array_equal(got[0], starts)
            assert np.array_equal(got[1], sizes)

    def test_incremental_append_matches_one_shot(self, tmp_path):
        starts, sizes = random_trace(500, 5)
        with ChunkedTraceWriter(tmp_path / "inc.rct", chunk_ranges=64) as w:
            for lo in range(0, 500, 37):  # uneven append batches
                w.append(starts[lo : lo + 37], sizes[lo : lo + 37])
        oneshot = write_chunked(
            tmp_path / "once.rct", starts, sizes, chunk_ranges=64
        )
        with ChunkedTrace(tmp_path / "inc.rct") as inc, oneshot:
            assert inc.digest == oneshot.digest
            assert np.array_equal(inc.materialize()[0], starts)


class TestWindow:
    def test_window_matches_array_slice(self, tmp_path):
        starts, sizes = random_trace(300, 9)
        with write_chunked(
            tmp_path / "w.rct", starts, sizes, chunk_ranges=41
        ) as trace:
            for lo, hi in [(0, 300), (0, 1), (40, 42), (41, 82), (299, 300),
                           (100, 100), (0, 41), (37, 250)]:
                ws, zs = trace.window(lo, hi)
                assert np.array_equal(ws, starts[lo:hi]), (lo, hi)
                assert np.array_equal(zs, sizes[lo:hi]), (lo, hi)

    def test_window_bounds_checked(self, tmp_path):
        with write_chunked(tmp_path / "b.rct", [0, 8], [4, 4]) as trace:
            with pytest.raises(TraceError, match="window"):
                trace.window(0, 3)
            with pytest.raises(TraceError, match="window"):
                trace.window(-1, 1)


class TestIdentity:
    def test_digest_independent_of_codec(self, tmp_path):
        starts, sizes = random_trace(200, 11)
        a = write_chunked(
            tmp_path / "a.rct", starts, sizes, chunk_ranges=50, codec="zlib"
        )
        b = write_chunked(
            tmp_path / "b.rct", starts, sizes, chunk_ranges=50, codec="raw"
        )
        with a, b:
            assert a.digest == b.digest
            assert a.trace_id == b.trace_id
            assert a.trace_id.startswith("chunked=")

    def test_digest_depends_on_chunk_geometry(self, tmp_path):
        starts, sizes = random_trace(200, 11)
        a = write_chunked(tmp_path / "a.rct", starts, sizes, chunk_ranges=50)
        b = write_chunked(tmp_path / "b.rct", starts, sizes, chunk_ranges=60)
        with a, b:
            assert a.digest != b.digest

    def test_pickle_ships_path_not_arrays(self, tmp_path):
        starts, sizes = random_trace(100, 13)
        with write_chunked(tmp_path / "p.rct", starts, sizes) as trace:
            blob = pickle.dumps(trace)
            assert len(blob) < 1000  # path + digest, not the arrays
            clone = pickle.loads(blob)
            try:
                assert clone.digest == trace.digest
                assert np.array_equal(clone.materialize()[0], starts)
            finally:
                clone.close()

    def test_pickle_detects_content_change(self, tmp_path):
        starts, sizes = random_trace(100, 13)
        with write_chunked(tmp_path / "m.rct", starts, sizes) as trace:
            blob = pickle.dumps(trace)
        write_chunked(tmp_path / "m.rct", starts[:50], sizes[:50]).close()
        with pytest.raises(TraceError, match="content changed"):
            pickle.loads(blob)


class TestCorruption:
    def _write(self, tmp_path, codec="zlib"):
        starts, sizes = random_trace(250, 17)
        path = tmp_path / "c.rct"
        write_chunked(path, starts, sizes, chunk_ranges=64, codec=codec).close()
        return path

    def test_truncated_file_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        for cut in (0, 4, len(data) // 2, len(data) - 3):
            path.write_bytes(data[:cut])
            with pytest.raises(TraceError, match=str(path.name)):
                ChunkedTrace(path)

    def test_flipped_payload_byte_detected(self, tmp_path):
        path = self._write(tmp_path, codec="raw")
        data = bytearray(path.read_bytes())
        data[len(b"RPROCHT1") + 5] ^= 0xFF  # inside chunk 0's payload
        path.write_bytes(bytes(data))
        trace = ChunkedTrace(path)  # footer still intact
        try:
            with pytest.raises(TraceError, match="digest mismatch"):
                trace.chunk(0)
            with pytest.raises(TraceError, match="digest mismatch"):
                trace.verify()
        finally:
            trace.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="bad magic"):
            ChunkedTrace(path)

    def test_interrupted_writer_leaves_truncated_file(self, tmp_path):
        path = tmp_path / "i.rct"
        with pytest.raises(RuntimeError):
            with ChunkedTraceWriter(path, chunk_ranges=4) as w:
                w.append([0, 8, 16, 24, 32], [4, 4, 4, 4, 4])
                raise RuntimeError("killed mid-write")
        with pytest.raises(TraceError, match="truncated"):
            ChunkedTrace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot open"):
            ChunkedTrace(tmp_path / "nope.rct")


class TestWriterValidation:
    def test_rejects_nonpositive_sizes(self, tmp_path):
        with pytest.raises(TraceError, match="positive"):
            write_chunked(tmp_path / "x.rct", [0, 4], [4, 0])

    def test_rejects_length_mismatch(self, tmp_path):
        with pytest.raises(TraceError, match="equal-length"):
            write_chunked(tmp_path / "x.rct", [0, 4], [4])

    def test_rejects_bad_chunk_ranges_and_codec(self, tmp_path):
        with pytest.raises(TraceError, match="chunk_ranges"):
            ChunkedTraceWriter(tmp_path / "x.rct", chunk_ranges=0)
        with pytest.raises(TraceError, match="codec"):
            ChunkedTraceWriter(tmp_path / "x.rct", codec="lz4")
