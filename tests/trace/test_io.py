"""Unit tests for repro.trace.io."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.emulator import emulate
from repro.trace.io import (
    load_events,
    load_range_trace,
    save_events,
    save_range_trace,
)
from repro.trace.ranges import KIND_DATA, KIND_INSTR, KIND_WRITE, RangeTrace


class TestEventRoundTrip:
    def test_round_trip_preserves_everything(self, tiny, tmp_path):
        events = emulate(tiny.program, tiny.streams, seed=7, max_visits=600)
        path = save_events(events, tmp_path / "trace.npz")
        loaded = load_events(path)
        assert loaded.blocks == events.blocks
        assert np.array_equal(loaded.visit_blocks, events.visit_blocks)
        assert np.array_equal(loaded.data_addrs, events.data_addrs)
        assert np.array_equal(loaded.data_streams, events.data_streams)
        assert np.array_equal(loaded.data_offsets, events.data_offsets)
        assert np.array_equal(loaded.data_writes, events.data_writes)

    def test_nested_directory_created(self, tiny, tmp_path):
        events = emulate(tiny.program, tiny.streams, seed=7, max_visits=50)
        path = save_events(events, tmp_path / "deep" / "dir" / "t.npz")
        assert path.exists()


class TestRangeRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = RangeTrace.build(
            [0, 64, 4096],
            [32, 4, 4],
            [KIND_INSTR, KIND_DATA, KIND_WRITE],
        )
        path = save_range_trace(trace, tmp_path / "ranges.npz")
        loaded = load_range_trace(path)
        assert np.array_equal(loaded.starts, trace.starts)
        assert np.array_equal(loaded.sizes, trace.sizes)
        assert np.array_equal(loaded.kinds, trace.kinds)

    def test_empty_trace(self, tmp_path):
        path = save_range_trace(RangeTrace.empty(), tmp_path / "e.npz")
        assert len(load_range_trace(path)) == 0


class TestFormatChecks:
    def test_kind_mismatch_rejected(self, tiny, tmp_path):
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=50)
        path = save_events(events, tmp_path / "t.npz")
        with pytest.raises(TraceError, match="expected 'ranges'"):
            load_range_trace(path)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(TraceError, match="not a repro trace"):
            load_events(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(
            path,
            version=np.int64(999),
            kind=np.bytes_(b"ranges"),
            starts=np.array([0]),
            sizes=np.array([4]),
            kinds=np.array([0], dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="version"):
            load_range_trace(path)


class TestCorruptionHandling:
    def _saved(self, tmp_path):
        trace = RangeTrace.build([0, 64], [32, 4], [KIND_INSTR, KIND_DATA])
        return save_range_trace(trace, tmp_path / "t.npz")

    def test_missing_file_names_path(self, tmp_path):
        path = tmp_path / "absent.npz"
        with pytest.raises(TraceError, match="no such trace archive"):
            load_range_trace(path)

    def test_truncated_archive_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        data = path.read_bytes()
        for cut in (1, 10, len(data) // 2):
            path.write_bytes(data[:cut])
            with pytest.raises(TraceError, match=path.name):
                load_range_trace(path)

    def test_flipped_byte_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        corrupted = 0
        for pos in range(60, len(data) - 60, 37):
            data_mut = bytearray(data)
            data_mut[pos] ^= 0xFF
            path.write_bytes(bytes(data_mut))
            try:
                loaded = load_range_trace(path)
                # Some bytes (zip padding) are slack; loading must then
                # still return the original payload.
                assert loaded.starts.tolist() == [0, 64]
            except TraceError:
                corrupted += 1
        assert corrupted > 0  # digest/CRC catches payload damage

    def test_digest_mismatch_reported(self, tmp_path):
        path = tmp_path / "forged.npz"
        np.savez(
            path,
            version=np.int64(2),
            kind=np.bytes_(b"ranges"),
            digest=np.bytes_(b"0" * 32),
            starts=np.array([0], dtype=np.int64),
            sizes=np.array([4], dtype=np.int64),
            kinds=np.array([0], dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="digest mismatch"):
            load_range_trace(path)

    def test_v1_archive_without_digest_still_loads(self, tmp_path):
        path = tmp_path / "v1.npz"
        np.savez(
            path,
            version=np.int64(1),
            kind=np.bytes_(b"ranges"),
            starts=np.array([0, 64], dtype=np.int64),
            sizes=np.array([32, 4], dtype=np.int64),
            kinds=np.array([0, 1], dtype=np.uint8),
        )
        loaded = load_range_trace(path)
        assert loaded.starts.tolist() == [0, 64]

    def test_round_trip_verifies_digest(self, tmp_path):
        # v2 archives carry a payload digest that load re-computes.
        path = self._saved(tmp_path)
        with np.load(path) as archive:
            assert archive["version"] == 2
            assert len(bytes(archive["digest"])) == 32
        assert load_range_trace(path).sizes.tolist() == [32, 4]
