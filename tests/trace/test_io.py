"""Unit tests for repro.trace.io."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.emulator import emulate
from repro.trace.io import (
    load_events,
    load_range_trace,
    save_events,
    save_range_trace,
)
from repro.trace.ranges import KIND_DATA, KIND_INSTR, KIND_WRITE, RangeTrace


class TestEventRoundTrip:
    def test_round_trip_preserves_everything(self, tiny, tmp_path):
        events = emulate(tiny.program, tiny.streams, seed=7, max_visits=600)
        path = save_events(events, tmp_path / "trace.npz")
        loaded = load_events(path)
        assert loaded.blocks == events.blocks
        assert np.array_equal(loaded.visit_blocks, events.visit_blocks)
        assert np.array_equal(loaded.data_addrs, events.data_addrs)
        assert np.array_equal(loaded.data_streams, events.data_streams)
        assert np.array_equal(loaded.data_offsets, events.data_offsets)
        assert np.array_equal(loaded.data_writes, events.data_writes)

    def test_nested_directory_created(self, tiny, tmp_path):
        events = emulate(tiny.program, tiny.streams, seed=7, max_visits=50)
        path = save_events(events, tmp_path / "deep" / "dir" / "t.npz")
        assert path.exists()


class TestRangeRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = RangeTrace.build(
            [0, 64, 4096],
            [32, 4, 4],
            [KIND_INSTR, KIND_DATA, KIND_WRITE],
        )
        path = save_range_trace(trace, tmp_path / "ranges.npz")
        loaded = load_range_trace(path)
        assert np.array_equal(loaded.starts, trace.starts)
        assert np.array_equal(loaded.sizes, trace.sizes)
        assert np.array_equal(loaded.kinds, trace.kinds)

    def test_empty_trace(self, tmp_path):
        path = save_range_trace(RangeTrace.empty(), tmp_path / "e.npz")
        assert len(load_range_trace(path)) == 0


class TestFormatChecks:
    def test_kind_mismatch_rejected(self, tiny, tmp_path):
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=50)
        path = save_events(events, tmp_path / "t.npz")
        with pytest.raises(TraceError, match="expected 'ranges'"):
            load_range_trace(path)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(TraceError, match="not a repro trace"):
            load_events(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(
            path,
            version=np.int64(999),
            kind=np.bytes_(b"ranges"),
            starts=np.array([0]),
            sizes=np.array([4]),
            kinds=np.array([0], dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="version"):
            load_range_trace(path)
