"""Unit tests for repro.trace.generator."""

import numpy as np
import pytest

from repro.cache.config import WORD_BYTES
from repro.errors import TraceError
from repro.iformat.assembler import assemble
from repro.iformat.linker import link
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111
from repro.trace.emulator import emulate
from repro.trace.generator import TraceGenerator
from repro.trace.ranges import KIND_DATA, KIND_INSTR, KIND_WRITE
from repro.vliwcomp.compile import compile_program
import pytest


@pytest.fixture(scope="module")
def bound(tiny_module):
    workload = tiny_module
    compiled = compile_program(workload.program, MachineDescription(P1111))
    binary = link(
        workload.program,
        assemble(compiled),
        packet_bytes=16,
        processor_name="1111",
    )
    events = emulate(
        workload.program, workload.streams, seed=2, max_visits=600
    )
    return binary, events, TraceGenerator(binary, events)


@pytest.fixture(scope="module")
def tiny_module():
    from repro.workloads.suite import tiny_workload

    return tiny_workload()


class TestInstructionTrace:
    def test_one_range_per_visit(self, bound):
        binary, events, generator = bound
        itrace = generator.instruction_trace()
        assert len(itrace) == events.n_visits
        assert (itrace.kinds == KIND_INSTR).all()

    def test_ranges_match_binary_placement(self, bound):
        binary, events, generator = bound
        itrace = generator.instruction_trace()
        for i in range(min(50, events.n_visits)):
            proc, block_id = events.blocks[events.visit_blocks[i]]
            start, size = binary.block_range(proc, block_id)
            assert itrace.starts[i] == start
            assert itrace.sizes[i] == size


class TestDataTrace:
    def test_word_sized_ranges(self, bound):
        _, events, generator = bound
        dtrace = generator.data_trace()
        assert len(dtrace) == events.n_data_refs
        assert (dtrace.sizes == WORD_BYTES).all()
        # Reads and writes are tagged distinctly; both are data kinds.
        assert set(np.unique(dtrace.kinds)) <= {KIND_DATA, KIND_WRITE}
        assert np.array_equal(
            dtrace.kinds == KIND_WRITE, events.data_writes
        )
        assert np.array_equal(dtrace.starts, events.data_addrs)


class TestUnifiedTrace:
    def test_interleaving_structure(self, bound):
        _, events, generator = bound
        unified = generator.unified_trace()
        assert len(unified) == events.n_visits + events.n_data_refs
        # First range of each visit is the instruction range, followed by
        # exactly the visit's data references.
        cursor = 0
        for i in range(events.n_visits):
            assert unified.kinds[cursor] == KIND_INSTR
            n_data = int(
                events.data_offsets[i + 1] - events.data_offsets[i]
            )
            for k in range(n_data):
                assert unified.kinds[cursor + 1 + k] in (
                    KIND_DATA,
                    KIND_WRITE,
                )
            cursor += 1 + n_data

    def test_components_recover_parts(self, bound):
        _, events, generator = bound
        unified = generator.unified_trace()
        instr = unified.instruction_component
        data = unified.data_component
        assert np.array_equal(
            instr.starts, generator.instruction_trace().starts
        )
        assert np.array_equal(data.starts, events.data_addrs)

    def test_text_and_data_addresses_disjoint(self, bound):
        binary, events, generator = bound
        unified = generator.unified_trace()
        instr_max = int(
            (unified.instruction_component.starts
             + unified.instruction_component.sizes).max()
        )
        data_min = int(unified.data_component.starts.min())
        assert instr_max <= data_min


class TestErrors:
    def test_missing_block_in_binary(self, bound, tiny_module):
        binary, events, _ = bound
        from repro.iformat.linker import Binary

        empty = Binary(program_name="tiny", processor_name="x", base=0)
        with pytest.raises(TraceError, match="lacks block"):
            TraceGenerator(empty, events)
