"""Unit tests for repro.trace.sampling (plans, windows, extrapolation)."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import TraceError
from repro.trace.emulator import emulate
from repro.trace.events import EventTrace
from repro.trace.sampling import (
    SamplePlan,
    SampleWindow,
    extrapolate,
    plan_windows,
    sample_events,
    sample_events_plan,
)


class TestSamplePlan:
    def test_spec_round_trip(self):
        plan = SamplePlan(8, 4096, warmup_ranges=512, mode="strided",
                          stride_ranges=100_000)
        assert SamplePlan.from_spec(plan.to_spec()) == plan

    def test_defaults(self):
        plan = SamplePlan.from_spec({"intervals": 4, "interval_ranges": 100})
        assert plan.warmup_ranges == 0
        assert plan.mode == "uniform"
        assert plan.stride_ranges is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"intervals": 0, "interval_ranges": 10},
            {"intervals": 1, "interval_ranges": 0},
            {"intervals": 1, "interval_ranges": 10, "warmup_ranges": -1},
            {"intervals": 1, "interval_ranges": 10, "mode": "random"},
            {"intervals": 1, "interval_ranges": 10, "stride_ranges": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TraceError):
            SamplePlan(**kwargs)

    def test_malformed_spec(self):
        with pytest.raises(TraceError, match="malformed sample spec"):
            SamplePlan.from_spec({"intervals": 4})


class TestPlanWindows:
    def test_windows_sorted_disjoint_and_clipped(self):
        @settings(max_examples=80, deadline=None)
        @given(
            total=st.integers(min_value=0, max_value=100_000),
            intervals=st.integers(min_value=1, max_value=12),
            length=st.integers(min_value=1, max_value=5_000),
            warmup=st.integers(min_value=0, max_value=2_000),
            mode=st.sampled_from(["first", "uniform", "strided"]),
        )
        def check(total, intervals, length, warmup, mode):
            plan = SamplePlan(intervals, length, warmup_ranges=warmup,
                              mode=mode)
            windows = plan_windows(total, plan)
            assert len(windows) <= intervals
            if total:
                assert windows
            prev_hi = 0
            for w in windows:
                assert 0 <= w.warm_lo <= w.lo < w.hi <= total
                assert w.lo >= prev_hi  # disjoint, ascending
                assert w.measured <= length or total <= length
                assert w.lo - w.warm_lo <= warmup
                prev_hi = w.hi

        check()

    def test_zero_total(self):
        assert plan_windows(0, SamplePlan(4, 10)) == []

    def test_short_trace_collapses_to_whole_window(self):
        windows = plan_windows(7, SamplePlan(4, 100, warmup_ranges=50))
        assert windows == [SampleWindow(warm_lo=0, lo=0, hi=7)]

    def test_first_mode_is_contiguous_prefix(self):
        windows = plan_windows(1000, SamplePlan(3, 50, mode="first"))
        assert [(w.lo, w.hi) for w in windows] == [(0, 50), (50, 100),
                                                  (100, 150)]

    def test_uniform_spans_start_to_end(self):
        windows = plan_windows(10_000, SamplePlan(4, 100))
        assert windows[0].lo == 0
        assert windows[-1].hi == 10_000
        assert len(windows) == 4

    def test_uniform_single_interval_centred(self):
        (w,) = plan_windows(1000, SamplePlan(1, 100))
        assert (w.lo, w.hi) == (450, 550)

    def test_strided_placement(self):
        windows = plan_windows(1000, SamplePlan(3, 50, mode="strided",
                                                stride_ranges=300))
        assert [(w.lo, w.hi) for w in windows] == [(0, 50), (300, 350),
                                                   (600, 650)]

    def test_warmup_clipped_at_trace_start(self):
        windows = plan_windows(10_000, SamplePlan(4, 100, warmup_ranges=500))
        assert windows[0].warm_lo == 0  # first window can't warm before 0
        assert windows[1].warm_lo == windows[1].lo - 500


class TestSampleEventsValidation:
    def _events(self, offsets):
        # EventTrace itself only checks the last offset covers the data
        # arrays; the interior shape is sampling's to validate.
        offsets = np.asarray(offsets, dtype=np.int64)
        n_visits = len(offsets) - 1
        n_data = int(offsets[-1]) if len(offsets) else 0
        return EventTrace(
            blocks={},
            visit_blocks=np.zeros(n_visits, dtype=np.int64),
            data_addrs=np.zeros(n_data, dtype=np.int64),
            data_streams=np.zeros(n_data, dtype=np.int64),
            data_offsets=offsets,
            data_writes=np.zeros(n_data, dtype=bool),
        )

    def test_nonzero_first_offset_rejected(self):
        with pytest.raises(TraceError, match="start at 0"):
            sample_events(self._events([1, 2]), 1)

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(TraceError, match="monotonically"):
            sample_events(self._events([0, 5, 3]), 1)

    def test_out_of_bounds_offsets_rejected(self):
        # The constructor enforces coverage, so shrink the data arrays
        # behind its back to model a trace corrupted after construction.
        events = self._events([0, 2, 4])
        object.__setattr__(events, "data_addrs", events.data_addrs[:3])
        with pytest.raises(TraceError, match="exceeds"):
            sample_events(events, 1)

    def test_max_visits_validated(self):
        with pytest.raises(TraceError, match="max_visits"):
            sample_events(self._events([0, 1]), 0)


class TestSampleEventsPlan:
    def test_first_mode_matches_sample_events_oracle(self, tiny):
        events = emulate(tiny.program, tiny.streams, seed=3, max_visits=900)
        for intervals, length in [(1, 100), (4, 50), (3, 250)]:
            plan = SamplePlan(intervals, length, mode="first")
            via_plan = sample_events_plan(events, plan)
            oracle = sample_events(events, intervals * length)
            assert np.array_equal(via_plan.visit_blocks, oracle.visit_blocks)
            assert np.array_equal(via_plan.data_addrs, oracle.data_addrs)
            assert np.array_equal(via_plan.data_offsets, oracle.data_offsets)
            assert np.array_equal(via_plan.data_writes, oracle.data_writes)

    def test_full_cover_returns_original(self, tiny):
        events = emulate(tiny.program, tiny.streams, seed=3, max_visits=200)
        plan = SamplePlan(1, events.n_visits * 2, mode="first")
        assert sample_events_plan(events, plan) is events

    def test_uniform_windows_keep_offsets_consistent(self, tiny):
        events = emulate(tiny.program, tiny.streams, seed=3, max_visits=900)
        plan = SamplePlan(4, 60)
        sampled = sample_events_plan(events, plan)
        assert sampled.n_visits == sum(
            w.measured for w in plan_windows(events.n_visits, plan)
        )
        offsets = sampled.data_offsets
        assert int(offsets[0]) == 0
        assert int(np.diff(offsets).min()) >= 0
        assert int(offsets[-1]) == len(sampled.data_addrs)


class TestExtrapolate:
    def test_exact_when_fully_sampled(self):
        est = extrapolate([(100, 300, 30)], 100)
        assert est.misses == 30
        assert est.accesses == 300
        assert est.error is None  # single interval: no spread
        assert est.sampled_fraction == 1.0

    def test_scales_by_sampled_fraction(self):
        est = extrapolate([(100, 200, 10), (100, 200, 10)], 1000)
        assert est.misses == 100
        assert est.accesses == 2000
        assert est.error == 0.0  # identical densities
        assert est.intervals == 2
        assert est.sampled_fraction == pytest.approx(0.2)

    def test_error_grows_with_spread(self):
        tight = extrapolate([(100, 100, 10), (100, 100, 11)], 1000)
        loose = extrapolate([(100, 100, 2), (100, 100, 20)], 1000)
        assert tight.error < loose.error

    def test_zero_misses_has_no_error_bar(self):
        est = extrapolate([(10, 20, 0), (10, 20, 0)], 100)
        assert est.misses == 0
        assert est.error is None

    def test_rejects_bad_inputs(self):
        with pytest.raises(TraceError, match="zero intervals"):
            extrapolate([], 100)
        with pytest.raises(TraceError, match="empty intervals"):
            extrapolate([(0, 0, 0)], 100)
        with pytest.raises(TraceError, match="<"):
            extrapolate([(200, 10, 1)], 100)
