"""Unit tests for repro.trace.emulator."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.machine.mdes import MachineDescription
from repro.machine.presets import P1111, P3221, P6332
from repro.trace.emulator import Emulator, emulate
from repro.vliwcomp.compile import compile_program
from repro.vliwcomp.regalloc import SPILL_STREAM


class TestDeterminism:
    def test_same_seed_same_trace(self, tiny):
        a = emulate(tiny.program, tiny.streams, seed=5, max_visits=500)
        b = emulate(tiny.program, tiny.streams, seed=5, max_visits=500)
        assert np.array_equal(a.visit_blocks, b.visit_blocks)
        assert np.array_equal(a.data_addrs, b.data_addrs)

    def test_different_seed_different_trace(self, tiny):
        a = emulate(tiny.program, tiny.streams, seed=5, max_visits=500)
        b = emulate(tiny.program, tiny.streams, seed=6, max_visits=500)
        assert not np.array_equal(a.visit_blocks, b.visit_blocks)

    def test_budget_respected(self, tiny):
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=37)
        assert events.n_visits <= 37

    def test_bad_budget(self, tiny):
        with pytest.raises(TraceError, match="max_visits"):
            emulate(tiny.program, tiny.streams, max_visits=0)

    def test_entry_block_is_first_visit(self, tiny):
        events = emulate(tiny.program, tiny.streams, seed=1, max_visits=10)
        proc_name, block_id = events.blocks[events.visit_blocks[0]]
        assert proc_name == tiny.program.entry
        assert block_id == tiny.program.entry_procedure.entry.block_id


class TestProcessorIndependence:
    """The paper's step-1 foundation: base traces match across machines."""

    def test_block_sequence_identical_across_processors(self, tiny):
        traces = []
        for processor in (P1111, P3221, P6332):
            compiled = compile_program(
                tiny.program, MachineDescription(processor)
            )
            events = emulate(
                tiny.program,
                tiny.streams,
                seed=3,
                max_visits=800,
                compiled=compiled,
            )
            traces.append(events)
        ref = traces[0]
        for other in traces[1:]:
            assert ref.blocks == other.blocks
            assert np.array_equal(ref.visit_blocks, other.visit_blocks)

    def test_base_data_addresses_are_subset_preserved(self, tiny):
        """Non-spill, non-speculative refs are identical across machines."""
        base = emulate(tiny.program, tiny.streams, seed=3, max_visits=800)
        compiled = compile_program(tiny.program, MachineDescription(P6332))
        decorated = emulate(
            tiny.program,
            tiny.streams,
            seed=3,
            max_visits=800,
            compiled=compiled,
        )
        # Per visit, the decorated ref list starts with the base refs.
        for i in range(base.n_visits):
            b0, b1 = base.data_offsets[i], base.data_offsets[i + 1]
            d0 = decorated.data_offsets[i]
            base_refs = base.data_addrs[b0:b1]
            decorated_refs = decorated.data_addrs[d0 : d0 + (b1 - b0)]
            assert np.array_equal(base_refs, decorated_refs)

    def test_decoration_adds_spill_and_spec_refs(self, tiny):
        base = emulate(tiny.program, tiny.streams, seed=3, max_visits=800)
        compiled = compile_program(tiny.program, MachineDescription(P6332))
        decorated = emulate(
            tiny.program,
            tiny.streams,
            seed=3,
            max_visits=800,
            compiled=compiled,
        )
        assert decorated.n_data_refs > base.n_data_refs

    def test_reference_machine_gets_no_decoration(self, tiny):
        base = emulate(tiny.program, tiny.streams, seed=3, max_visits=800)
        compiled = compile_program(tiny.program, MachineDescription(P1111))
        decorated = emulate(
            tiny.program,
            tiny.streams,
            seed=3,
            max_visits=800,
            compiled=compiled,
        )
        # 1111 has no speculation capacity and (with 32 regs) no spills
        # on the tiny workload, so the traces are byte-identical.
        assert np.array_equal(base.data_addrs, decorated.data_addrs)


class TestValidationPath:
    def test_emulator_validates_program(self, tiny):
        from repro.isa.program import Program

        broken = Program(name="broken", entry="ghost")
        with pytest.raises(Exception, match="entry"):
            Emulator(broken, tiny.streams)
