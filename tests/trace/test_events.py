"""Unit tests for repro.trace.events and repro.trace.sampling."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import EventTrace, EventTraceBuilder
from repro.trace.sampling import sample_events


def build_sample():
    builder = EventTraceBuilder()
    builder.begin_visit("main", 0)
    builder.add_data_ref(0x1000, 0)
    builder.add_data_ref(0x2000, 1)
    builder.end_visit()
    builder.begin_visit("f", 3)
    builder.end_visit()
    builder.begin_visit("main", 0)
    builder.add_data_ref(0x1004, 0)
    builder.end_visit()
    return builder.build()


class TestBuilder:
    def test_csr_structure(self):
        events = build_sample()
        assert events.n_visits == 3
        assert events.n_data_refs == 3
        assert events.data_offsets.tolist() == [0, 2, 2, 3]

    def test_block_table_deduplicates(self):
        events = build_sample()
        assert events.blocks == (("main", 0), ("f", 3))
        assert events.visit_blocks.tolist() == [0, 1, 0]

    def test_visit_frequencies(self):
        events = build_sample()
        assert events.visit_frequencies().tolist() == [2, 1]

    def test_iter_visits(self):
        events = build_sample()
        visits = list(events.iter_visits())
        assert visits[0][0] == "main"
        assert visits[0][2].tolist() == [0x1000, 0x2000]
        assert visits[1][2].tolist() == []

    def test_unbalanced_builder_rejected(self):
        builder = EventTraceBuilder()
        builder.begin_visit("main", 0)
        with pytest.raises(TraceError, match="unbalanced"):
            builder.build()


class TestEventTraceValidation:
    def test_offsets_length_checked(self):
        with pytest.raises(TraceError, match="n_visits"):
            EventTrace(
                blocks=(("m", 0),),
                visit_blocks=np.array([0], dtype=np.int32),
                data_addrs=np.array([], dtype=np.int64),
                data_streams=np.array([], dtype=np.int32),
                data_offsets=np.array([0], dtype=np.int64),
                data_writes=np.array([], dtype=bool),
            )

    def test_offsets_must_cover_addrs(self):
        with pytest.raises(TraceError, match="cover"):
            EventTrace(
                blocks=(("m", 0),),
                visit_blocks=np.array([0], dtype=np.int32),
                data_addrs=np.array([4], dtype=np.int64),
                data_streams=np.array([0], dtype=np.int32),
                data_offsets=np.array([0, 0], dtype=np.int64),
                data_writes=np.array([False], dtype=bool),
            )

    def test_writes_length_checked(self):
        with pytest.raises(TraceError, match="data_writes"):
            EventTrace(
                blocks=(("m", 0),),
                visit_blocks=np.array([0], dtype=np.int32),
                data_addrs=np.array([4], dtype=np.int64),
                data_streams=np.array([0], dtype=np.int32),
                data_offsets=np.array([0, 1], dtype=np.int64),
                data_writes=np.array([], dtype=bool),
            )


class TestSampling:
    def test_truncates_visits_and_data(self):
        events = build_sample()
        sampled = sample_events(events, 2)
        assert sampled.n_visits == 2
        assert sampled.n_data_refs == 2
        assert sampled.data_offsets.tolist() == [0, 2, 2]

    def test_short_trace_returned_unchanged(self):
        events = build_sample()
        assert sample_events(events, 100) is events

    def test_bad_budget(self):
        with pytest.raises(TraceError, match="max_visits"):
            sample_events(build_sample(), 0)
