"""Unit tests for repro.trace.ranges."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace


class TestConstruction:
    def test_build_with_scalar_kind(self):
        trace = RangeTrace.build([0, 64], [32, 16], KIND_INSTR)
        assert len(trace) == 2
        assert (trace.kinds == KIND_INSTR).all()

    def test_build_with_kind_array(self):
        trace = RangeTrace.build([0, 64], [32, 4], [KIND_INSTR, KIND_DATA])
        assert trace.kinds.tolist() == [KIND_INSTR, KIND_DATA]

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError, match="equal length"):
            RangeTrace.build([0, 1], [4], KIND_DATA)

    def test_non_positive_sizes_rejected(self):
        with pytest.raises(TraceError, match="positive"):
            RangeTrace.build([0], [0], KIND_DATA)

    def test_empty(self):
        trace = RangeTrace.empty()
        assert len(trace) == 0
        assert trace.total_bytes == 0
        assert trace.total_words == 0


class TestDerivedQuantities:
    def test_total_bytes_and_words(self):
        trace = RangeTrace.build([0, 100], [32, 8], KIND_INSTR)
        assert trace.total_bytes == 40
        # [0,32) = 8 words; [100,108) covers words 25 and 26 = 2 words.
        assert trace.total_words == 10

    def test_line_accesses(self):
        trace = RangeTrace.build([8], [32], KIND_INSTR)
        # Bytes [8, 40): lines 0, 1, 2 at 16B lines; 1 line at 64B.
        assert trace.line_accesses(16) == 3
        assert trace.line_accesses(64) == 1

    def test_word_addresses_expansion(self):
        trace = RangeTrace.build([4, 100], [8, 4], KIND_INSTR)
        assert trace.word_addresses().tolist() == [1, 2, 25]


class TestComponents:
    def make_mixed(self):
        return RangeTrace.build(
            [0, 1000, 32, 2000],
            [32, 4, 32, 4],
            [KIND_INSTR, KIND_DATA, KIND_INSTR, KIND_DATA],
        )

    def test_component_split_preserves_order(self):
        mixed = self.make_mixed()
        instr = mixed.instruction_component
        data = mixed.data_component
        assert instr.starts.tolist() == [0, 32]
        assert data.starts.tolist() == [1000, 2000]

    def test_head(self):
        mixed = self.make_mixed()
        head = mixed.head(2)
        assert len(head) == 2
        assert head.starts.tolist() == [0, 1000]

    def test_concatenate(self):
        mixed = self.make_mixed()
        double = RangeTrace.concatenate([mixed, mixed])
        assert len(double) == 8
        assert double.total_bytes == 2 * mixed.total_bytes

    def test_concatenate_empty_list(self):
        assert len(RangeTrace.concatenate([])) == 0
