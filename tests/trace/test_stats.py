"""Unit tests for repro.trace.stats."""

import pytest

from repro.errors import TraceError
from repro.trace.ranges import KIND_INSTR, RangeTrace
from repro.trace.stats import (
    measured_unique_lines,
    miss_curve,
    summarize,
    working_set_curve,
)


def looping_trace(n_blocks=8, repeats=20, block_bytes=64):
    """A loop over n_blocks contiguous blocks, visited repeatedly."""
    starts = [
        0x1000 + (i % n_blocks) * block_bytes
        for i in range(n_blocks * repeats)
    ]
    return RangeTrace.build(
        starts, [block_bytes] * len(starts), KIND_INSTR
    )


class TestSummarize:
    def test_empty(self):
        summary = summarize(RangeTrace.empty())
        assert summary.total_words == 0
        assert summary.reuse_factor == 0.0

    def test_looping_trace_reuse(self):
        summary = summarize(looping_trace(n_blocks=8, repeats=20))
        assert summary.unique_words == 8 * 16  # 8 blocks x 16 words
        assert summary.total_words == 8 * 16 * 20
        assert summary.reuse_factor == pytest.approx(20.0)
        assert summary.footprint_bytes == 8 * 64


class TestMeasuredUniqueLines:
    def test_decreases_with_line_size(self):
        trace = looping_trace()
        lines = measured_unique_lines(trace, [4, 8, 16, 32, 64])
        values = [lines[k] for k in (4, 8, 16, 32, 64)]
        assert values == sorted(values, reverse=True)
        assert lines[4] == 8 * 16
        assert lines[64] == 8

    def test_bad_line_size(self):
        with pytest.raises(TraceError, match="multiple"):
            measured_unique_lines(looping_trace(), [6])


class TestWorkingSetCurve:
    def test_loop_working_set_is_flat(self):
        trace = looping_trace(n_blocks=4, repeats=50, block_bytes=64)
        curve = working_set_curve(trace, granule_words=4 * 16 * 5)
        assert len(curve) >= 2
        # Every granule sees the same 4-block working set.
        assert all(v == 4 * 16 for v in curve)

    def test_bad_granule(self):
        with pytest.raises(TraceError, match="granule"):
            working_set_curve(looping_trace(), 0)


class TestMissCurve:
    def test_monotone_in_capacity(self):
        trace = looping_trace(n_blocks=64, repeats=10)
        curve = miss_curve(trace, line_size=32, assoc=2, sizes_kb=[1, 2, 4, 8])
        rates = [curve[k] for k in (1, 2, 4, 8)]
        assert all(0.0 <= r <= 1.0 for r in rates)
        assert rates == sorted(rates, reverse=True)

    def test_fitting_cache_only_cold_misses(self):
        trace = looping_trace(n_blocks=8, repeats=50)
        curve = miss_curve(trace, line_size=64, assoc=1, sizes_kb=[16])
        # 8 cold misses over 8*50 accesses.
        assert curve[16] == pytest.approx(8 / (8 * 50))

    def test_indivisible_size_rejected(self):
        with pytest.raises(TraceError, match="divisible"):
            miss_curve(looping_trace(), 32, 2, sizes_kb=[0.05])
