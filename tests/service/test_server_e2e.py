"""End-to-end tests: HTTP API, concurrent clients, shared-store dedup.

The acceptance scenario lives in :class:`TestConcurrentClients`: two
clients submit overlapping sweep grids through HTTP against one shared
store; each overlapping configuration is simulated exactly once (the
later job serves it from the store, hit counters increase) and every
returned miss count equals direct in-process simulation.
"""

import json
import threading

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cli import main
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.jobs import build_trace_arrays
from repro.service.server import EvalService, make_server


SYNTH = {
    "kind": "synthetic",
    "seed": 11,
    "ranges": 150,
    "footprint": 4096,
    "max_size": 32,
}


def sweep_spec(sets):
    return {
        "kind": "sweep",
        "trace": SYNTH,
        "configs": {"sets": sets, "assocs": [1, 2], "line_sizes": [16]},
    }


@pytest.fixture
def service(tmp_path):
    # One worker: concurrently *submitted* jobs execute in FIFO order,
    # which makes the dedup arithmetic below deterministic.
    with EvalService(tmp_path / "service.sqlite", workers=1) as svc:
        server = make_server(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield svc, ServiceClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()


class TestHTTPBasics:
    def test_health(self, service):
        _, client = service
        assert client.health() is True

    def test_submit_wait_and_fetch(self, service):
        _, client = service
        job_id = client.submit(sweep_spec([8]))
        record = client.wait(job_id, timeout=60)
        assert record.finished_ok
        assert record.result["total"] == 2
        assert client.job(job_id).state == "done"
        assert any(r.id == job_id for r in client.jobs(state="done"))

    def test_results_endpoint(self, service):
        _, client = service
        job_id = client.submit(sweep_spec([8]))
        record = client.wait(job_id, timeout=60)
        items = client.results(prefix=f"misses:{record.result['trace_key']}:")
        assert len(items) == 2
        for value in items.values():
            assert set(value) == {"accesses", "misses"}

    def test_metrics_endpoint(self, service):
        _, client = service
        client.wait(client.submit(sweep_spec([8])), timeout=60)
        metrics = client.metrics()
        assert metrics["jobs"]["done"] == 1
        assert metrics["store"]["entries"] >= 2
        assert "events" in metrics["journal"]

    def test_bad_spec_is_http_400(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"kind": "transmogrify"})

    def test_unknown_job_is_http_404(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.job("deadbeef")

    def test_unknown_route_is_http_404(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("GET", "/nope")

    def test_failed_job_surfaces_error(self, service):
        svc, client = service
        # Valid shape, invalid at execution: unknown benchmark.
        job_id = client.submit(
            {
                "kind": "estimate",
                "benchmark": "999.nope",
                "configs": [{"sets": 8, "assoc": 1, "line_size": 16}],
            },
            max_attempts=1,
        )
        with pytest.raises(ServiceError, match="failed after 1"):
            client.wait(job_id, timeout=60)
        assert svc.queue.counts()["failed"] == 1


class TestConcurrentClients:
    """The acceptance scenario (see module docstring)."""

    def test_overlapping_grids_simulate_each_config_once(self, service):
        svc, client_a = service
        client_b = ServiceClient(client_a.base_url)
        grid_a, grid_b = [8, 16], [16, 32]  # overlap: sets=16 (2 configs)
        records = {}

        def run(name, client, sets):
            job_id = client.submit(sweep_spec(sets))
            records[name] = client.wait(job_id, timeout=120)

        threads = [
            threading.Thread(target=run, args=("a", client_a, grid_a)),
            threading.Thread(target=run, args=("b", client_b, grid_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive()

        result_a = records["a"].result
        result_b = records["b"].result
        # 6 distinct configs across both grids, 2 shared.  No config is
        # simulated twice: total simulation work equals the distinct
        # count even though 8 config-results were returned.
        assert result_a["total"] == result_b["total"] == 4
        simulated = result_a["simulated"] + result_b["simulated"]
        from_store = result_a["from_store"] + result_b["from_store"]
        assert simulated == 6
        assert from_store == 2
        # The shared store's hit counters moved for the overlap.
        assert svc.store.hits >= 2
        # Every returned miss count equals direct in-process simulation.
        starts, sizes = build_trace_arrays(SYNTH)
        for result in (result_a, result_b):
            for doc in result["results"]:
                config = CacheConfig(
                    doc["sets"], doc["assoc"], doc["line_size"]
                )
                expected = simulate_trace(config, starts, sizes)
                assert doc["misses"] == expected.misses
                assert doc["accesses"] == expected.accesses

    def test_identical_grids_second_is_pure_cache(self, service):
        _, client = service
        first = client.wait(client.submit(sweep_spec([8, 16])), timeout=120)
        second = client.wait(client.submit(sweep_spec([8, 16])), timeout=120)
        assert first.result["simulated"] == 4
        assert second.result["simulated"] == 0
        assert second.result["from_store"] == 4
        assert [d["misses"] for d in second.result["results"]] == [
            d["misses"] for d in first.result["results"]
        ]


class TestServiceRestart:
    def test_restart_recovers_and_reuses_store(self, tmp_path):
        db = tmp_path / "service.sqlite"
        with EvalService(db, workers=1) as svc:
            first = svc.submit(sweep_spec([8, 16]))
            assert svc.drain(timeout=120)
            assert svc.queue.get(first).finished_ok
        # New service process over the same database: already-stored
        # results short-circuit simulation entirely.
        with EvalService(db, workers=1) as svc:
            second = svc.submit(sweep_spec([8, 16]))
            assert svc.drain(timeout=120)
            record = svc.queue.get(second)
            assert record.result["from_store"] == 4
            assert record.result["simulated"] == 0


class TestCLISubmit:
    def test_submit_via_cli(self, service, tmp_path, capsys):
        _, client = service
        spec_path = tmp_path / "job.json"
        spec_path.write_text(json.dumps(sweep_spec([8])))
        code = main(
            [
                "submit",
                "--url",
                client.base_url,
                "--spec",
                str(spec_path),
                "--wait",
                "--timeout",
                "120",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "done"
        assert doc["result"]["total"] == 2

    def test_submit_no_wait_prints_id(self, service, tmp_path, capsys):
        _, client = service
        spec_path = tmp_path / "job.json"
        spec_path.write_text(json.dumps(sweep_spec([8])))
        assert main(["submit", "--url", client.base_url, "--spec", str(spec_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "queued"
        client.wait(doc["id"], timeout=60)
