"""Fleet tests: lease reaping across service processes, the HTTP
worker protocol, fenced completion, and the pull-loop worker itself.

The headline regressions:

* ``test_second_service_start_does_not_requeue_inflight`` — the old
  ``recover(owner=None)`` treated *every* running job as orphaned, so
  a second ``EvalService`` on one database requeued jobs a live
  process was still executing (double execution).
* ``test_back_to_back_submits_wake_both_workers`` — the old
  ``Event.clear()`` wake path let one idle worker swallow another's
  wakeup, stranding a queued job for a full poll interval.
"""

import threading
import time

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.errors import ServiceError, StaleLeaseError
from repro.service.client import ServiceClient
from repro.service.jobs import build_trace_arrays, result_key, trace_key
from repro.service.queue import JobQueue
from repro.service.server import EvalService, make_server
from repro.service.store import ResultStore
from repro.service.worker import FleetWorker, RemoteStore

SYNTH = {
    "kind": "synthetic",
    "seed": 23,
    "ranges": 120,
    "footprint": 4096,
    "max_size": 32,
}


def sweep_spec(sets, **extra):
    return {
        "kind": "sweep",
        "trace": SYNTH,
        "configs": {"sets": sets, "assocs": [1], "line_sizes": [16]},
        **extra,
    }


@pytest.fixture
def broker(tmp_path):
    """A broker-mode service (no local workers) behind HTTP."""
    with EvalService(
        tmp_path / "service.sqlite",
        workers=0,
        lease=1.0,
        reap_interval=0.1,
    ) as svc:
        server = make_server(svc)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address
        try:
            yield svc, ServiceClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()


class TestMultiServiceRecovery:
    def test_second_service_start_does_not_requeue_inflight(self, tmp_path):
        db = tmp_path / "service.sqlite"
        queue = JobQueue(ResultStore(db))
        job_id = queue.submit(sweep_spec([8]))
        # Service A's worker thread holds a live lease on the job.
        claimed = queue.claim("thread=svc-a-worker-0", lease=120.0)
        assert claimed.id == job_id

        # Service B starts on the same database: its startup recovery
        # must leave the in-flight job alone.
        with EvalService(db, workers=0) as second:
            record = second.queue.get(job_id)
            assert record.state == "running"
            assert record.owner == "thread=svc-a-worker-0"
            assert record.attempts == 1  # not re-claimed, not requeued

    def test_startup_reaps_expired_leases(self, tmp_path):
        db = tmp_path / "service.sqlite"
        queue = JobQueue(ResultStore(db))
        job_id = queue.submit(sweep_spec([8]))
        queue.claim("crashed-worker", lease=0.0)
        from repro.runtime.journal import RunJournal

        with EvalService(db, workers=0, journal=RunJournal()) as svc:
            assert svc.queue.get(job_id).state == "queued"
            events = [
                e
                for e in svc.journal.select("lease")
                if e.get("action") == "expired"
            ]
            assert [e["id"] for e in events] == [job_id]


class TestWakeRace:
    def test_back_to_back_submits_wake_both_workers(
        self, tmp_path, monkeypatch
    ):
        """Two jobs submitted back-to-back to two idle workers must
        both start promptly.  The old Event-based wake path let one
        worker's ``clear()`` swallow the other's wakeup, stranding the
        second job until the first finished or the poll timed out."""
        started = threading.Event()
        second_started = threading.Event()
        count = [0]
        lock = threading.Lock()

        def slow_execute(spec, store, journal=None, **kwargs):
            with lock:
                count[0] += 1
                (started if count[0] == 1 else second_started).set()
            time.sleep(1.0)  # hold this worker busy past the assert
            return {"ok": True}

        monkeypatch.setattr(
            "repro.service.server.execute_job", slow_execute
        )
        # A poll interval far above the budget: a swallowed wakeup
        # cannot be rescued by the idle poll.
        with EvalService(
            tmp_path / "service.sqlite",
            workers=2,
            poll_interval=30.0,
        ) as svc:
            time.sleep(0.2)  # both workers reach their idle wait
            svc.submit(sweep_spec([8]))
            svc.submit(sweep_spec([16]))
            assert started.wait(timeout=5.0)
            assert second_started.wait(timeout=5.0), (
                "second submit's wakeup was swallowed; the job sat "
                "queued while a worker idled"
            )
            assert svc.drain(timeout=20.0)


class TestFleetHTTPProtocol:
    def test_register_claim_heartbeat_complete(self, broker):
        svc, client = broker
        registration = client.register_worker(tags=["fast"])
        worker_id = registration["id"]
        assert registration["lease"] == svc.lease
        assert [w["id"] for w in client.workers()] == [worker_id]

        job_id = svc.submit(sweep_spec([8]))
        record, token = client.claim(worker_id, lease=30.0)
        assert record.id == job_id
        assert token == 1
        assert client.claim(worker_id) is None  # nothing else queued

        deadline = client.heartbeat(
            job_id, token, worker=worker_id, lease=30.0
        )
        assert deadline > time.time()

        client.put_results({"misses:demo:S8A1L16": {"m": 1}})
        client.complete(job_id, {"ok": True}, token=token, worker=worker_id)
        assert client.job(job_id).finished_ok
        assert client.result("misses:demo:S8A1L16")["found"]

    def test_expired_lease_is_reaped_and_refenced(self, broker):
        svc, client = broker
        worker_id = client.register_worker()["id"]
        job_id = svc.submit(sweep_spec([8]))

        # Slow worker claims with the minimum lease and stalls.
        _, slow_token = client.claim(worker_id, lease=0.05)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if client.job(job_id).state == "queued":
                break
            time.sleep(0.05)
        else:
            pytest.fail("reaper never requeued the expired lease")

        # A second worker takes over and finishes.
        fast_id = client.register_worker()["id"]
        record, fast_token = client.claim(fast_id, lease=30.0)
        assert record.id == job_id
        assert fast_token == slow_token + 1
        client.complete(job_id, {"winner": "fast"}, token=fast_token)

        # The stalled worker's late report is fenced with HTTP 409.
        with pytest.raises(StaleLeaseError):
            client.complete(job_id, {"winner": "slow"}, token=slow_token)
        with pytest.raises(StaleLeaseError):
            client.heartbeat(job_id, slow_token)
        # Exactly one execution's outcome survives.
        assert client.job(job_id).result == {"winner": "fast"}

    def test_capability_tags_respected_over_http(self, broker):
        svc, client = broker
        plain = client.register_worker(tags=[])["id"]
        gpu = client.register_worker(tags=["gpu"])["id"]
        job_id = svc.submit(sweep_spec([8], requires=["gpu"]))
        assert client.claim(plain, tags=[]) is None
        record, _ = client.claim(gpu, tags=["gpu"])
        assert record.id == job_id

    def test_transition_requires_token(self, broker):
        svc, client = broker
        job_id = svc.submit(sweep_spec([8]))
        worker_id = client.register_worker()["id"]
        client.claim(worker_id)
        with pytest.raises(ServiceError, match="token"):
            client._request(
                "POST", f"/jobs/{job_id}/complete", {"result": {}}
            )


class TestFleetWorker:
    def test_worker_pulls_executes_and_uploads(self, broker):
        svc, client = broker
        ids = [svc.submit(sweep_spec([s])) for s in (8, 16)]
        worker = FleetWorker(
            client.base_url, worker_id="w-test", max_jobs=2, lease=5.0
        )
        executed = worker.run()
        assert executed == 2
        assert worker.jobs_done == 2

        starts, sizes = build_trace_arrays(SYNTH)
        tkey = trace_key(SYNTH)
        for job_id, sets in zip(ids, (8, 16)):
            record = svc.queue.get(job_id)
            assert record.finished_ok
            config = CacheConfig(sets, 1, 16)
            expected = simulate_trace(config, starts, sizes)
            doc = record.result["results"][0]
            assert doc["misses"] == expected.misses
            # Results were uploaded into the shared store over HTTP.
            stored = svc.store.get(result_key(tkey, config))
            assert stored["misses"] == expected.misses
        # The worker registered itself with its identity.
        assert any(w["id"] == "w-test" for w in svc.queue.workers())

    def test_worker_reports_job_failure(self, broker):
        svc, client = broker
        job_id = svc.submit(
            {
                "kind": "estimate",
                "benchmark": "999.nope",
                "configs": [{"sets": 8, "assoc": 1, "line_size": 16}],
            },
            max_attempts=1,
        )
        worker = FleetWorker(client.base_url, max_jobs=1, lease=5.0)
        worker.run()
        assert worker.jobs_failed == 1
        record = svc.queue.get(job_id)
        assert record.state == "failed"
        assert "999.nope" in record.error

    def test_remote_store_round_trip(self, broker):
        _, client = broker
        store = RemoteStore(client)
        assert store.get("nope") is None
        assert store.misses == 1
        store.put("k1", {"v": 1})
        store.put_many({"k2": [1, 2], "k3": None}, namespace="evalcache")
        assert store.get("k1") == {"v": 1}
        assert store.hits == 1
        assert "k1" in store
        assert store.contains("k2", namespace="evalcache")
        assert store.count(namespace="evalcache") == 2
        row = store._fetch("k2", "evalcache")
        assert row is not None
        import json

        assert json.loads(row["value"]) == [1, 2]
        assert store.stats()["backend"] == "remote"


class TestClientBackoff:
    def test_wait_backs_off_exponentially_with_cap(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        states = ["queued"] * 8 + ["done"]
        sleeps = []

        class FakeRecord:
            def __init__(self, state):
                self.state = state

        monkeypatch.setattr(
            client, "job", lambda job_id: FakeRecord(states.pop(0))
        )
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        record = client.wait("j1", timeout=3600.0, poll=0.1, poll_max=2.0)
        assert record.state == "done"
        assert len(sleeps) == 8
        # Grew beyond the initial interval, never beyond the cap.
        assert max(sleeps) > 0.1
        assert all(s <= 2.0 for s in sleeps)
        # Jitter keeps polls off lockstep but within the envelope.
        for i, s in enumerate(sleeps):
            assert s <= min(0.1 * 2**i, 2.0) + 1e-9

    def test_wait_honors_deadline(self, monkeypatch):
        client = ServiceClient("http://example.invalid")

        class FakeRecord:
            state = "running"

        clock = [0.0]
        monkeypatch.setattr(client, "job", lambda job_id: FakeRecord())
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: clock[0]
        )

        def advance(s):
            clock[0] += max(s, 0.05)

        monkeypatch.setattr("repro.service.client.time.sleep", advance)
        with pytest.raises(ServiceError, match="still running"):
            client.wait("j1", timeout=5.0, poll=0.1)
