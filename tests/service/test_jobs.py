"""Unit tests for repro.service.jobs (spec parsing and execution)."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.errors import ServiceError
from repro.service.jobs import (
    NS_EVALCACHE,
    NS_METRICS,
    build_trace_arrays,
    execute_job,
    parse_configs,
    result_key,
    trace_key,
    validate_spec,
)
from repro.service.store import ResultStore


SYNTH = {
    "kind": "synthetic",
    "seed": 7,
    "ranges": 200,
    "footprint": 8192,
    "max_size": 32,
}


def sweep_spec(**overrides):
    spec = {
        "kind": "sweep",
        "trace": SYNTH,
        "configs": {"sets": [8, 16], "assocs": [1, 2], "line_sizes": [16]},
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "service.sqlite")


class TestContentAddressing:
    def test_trace_key_is_order_independent(self):
        a = {"kind": "synthetic", "seed": 1, "ranges": 10}
        b = {"ranges": 10, "seed": 1, "kind": "synthetic"}
        assert trace_key(a) == trace_key(b)
        assert trace_key(a).startswith("spec=")

    def test_different_specs_different_keys(self):
        assert trace_key({"seed": 1}) != trace_key({"seed": 2})

    def test_result_key_embeds_config_identity(self):
        key = result_key("spec=abc", CacheConfig(8, 2, 16))
        assert key == "misses:spec=abc:S8A2L16"


class TestParseConfigs:
    def test_grid_cross_product(self):
        configs = parse_configs(
            {"sets": [8, 16], "assocs": [1, 2], "line_sizes": [16, 32]}
        )
        assert len(configs) == 8
        assert CacheConfig(16, 2, 32) in configs

    def test_explicit_list(self):
        configs = parse_configs([{"sets": 8, "assoc": 1, "line_size": 16}])
        assert configs == [CacheConfig(8, 1, 16)]

    def test_duplicates_removed_order_kept(self):
        configs = parse_configs(
            [
                {"sets": 8, "assoc": 1, "line_size": 16},
                {"sets": 16, "assoc": 1, "line_size": 16},
                {"sets": 8, "assoc": 1, "line_size": 16},
            ]
        )
        assert configs == [CacheConfig(8, 1, 16), CacheConfig(16, 1, 16)]

    def test_malformed_raises(self):
        with pytest.raises(ServiceError, match="malformed configs"):
            parse_configs([{"sets": 8}])
        with pytest.raises(ServiceError, match="malformed configs"):
            parse_configs({"sets": [8]})

    def test_infeasible_config_raises(self):
        with pytest.raises(ServiceError, match="infeasible"):
            parse_configs([{"sets": 7, "assoc": 1, "line_size": 16}])

    def test_empty_raises(self):
        with pytest.raises(ServiceError, match="empty"):
            parse_configs([])


class TestTraceArrays:
    def test_ranges(self):
        starts, sizes = build_trace_arrays(
            {"kind": "ranges", "starts": [0, 32], "sizes": [16, 8]}
        )
        assert starts.tolist() == [0, 32]
        assert sizes.tolist() == [16, 8]

    def test_ranges_mismatch_raises(self):
        with pytest.raises(ServiceError, match="equal-length"):
            build_trace_arrays(
                {"kind": "ranges", "starts": [0], "sizes": [16, 8]}
            )

    def test_synthetic_is_deterministic(self):
        first = build_trace_arrays(SYNTH)
        second = build_trace_arrays(SYNTH)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        assert len(first[0]) == SYNTH["ranges"]
        assert first[1].min() >= 1
        assert first[1].max() <= SYNTH["max_size"]

    def test_synthetic_bad_params_raise(self):
        with pytest.raises(ServiceError, match="positive"):
            build_trace_arrays({"kind": "synthetic", "ranges": 0})

    def test_unknown_kind_raises(self):
        with pytest.raises(ServiceError, match="unknown trace kind"):
            build_trace_arrays({"kind": "mystery"})


class TestValidateSpec:
    def test_accepts_good_specs(self):
        validate_spec(sweep_spec())
        validate_spec(
            {
                "kind": "estimate",
                "benchmark": "085.gcc",
                "configs": [{"sets": 8, "assoc": 1, "line_size": 16}],
                "dilations": [1.0, 2.0],
            }
        )
        validate_spec({"kind": "explore", "benchmark": "085.gcc"})

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            validate_spec([1, 2])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            validate_spec({"kind": "transmogrify"})

    def test_rejects_missing_fields(self):
        with pytest.raises(ServiceError, match="missing required field"):
            validate_spec({"kind": "sweep", "configs": []})
        with pytest.raises(ServiceError, match="missing required field"):
            validate_spec({"kind": "explore"})

    def test_rejects_bad_trace_eagerly(self):
        spec = sweep_spec(trace={"kind": "ranges", "starts": [], "sizes": []})
        with pytest.raises(ServiceError, match="equal-length"):
            validate_spec(spec)

    def test_rejects_bad_role_and_empty_dilations(self):
        base = {
            "kind": "estimate",
            "benchmark": "085.gcc",
            "configs": [{"sets": 8, "assoc": 1, "line_size": 16}],
        }
        with pytest.raises(ServiceError, match="unknown role"):
            validate_spec({**base, "role": "tlb"})
        with pytest.raises(ServiceError, match="at least one dilation"):
            validate_spec({**base, "dilations": []})


class TestSweepExecution:
    def test_results_match_direct_simulation(self, store):
        result = execute_job(sweep_spec(), store)
        assert result["total"] == 4
        assert result["from_store"] == 0
        assert result["simulated"] == 4
        starts, sizes = build_trace_arrays(SYNTH)
        for doc in result["results"]:
            config = CacheConfig(doc["sets"], doc["assoc"], doc["line_size"])
            expected = simulate_trace(config, starts, sizes)
            assert doc["misses"] == expected.misses
            assert doc["accesses"] == expected.accesses
            assert doc["source"] == "simulated"

    def test_second_run_served_entirely_from_store(self, store):
        execute_job(sweep_spec(), store)
        before = (store.hits, store.misses)
        result = execute_job(sweep_spec(), store)
        assert result["from_store"] == 4
        assert result["simulated"] == 0
        assert store.hits > before[0]  # hit counters moved
        assert all(doc["source"] == "store" for doc in result["results"])

    def test_results_are_durable_metrics(self, store):
        result = execute_job(sweep_spec(), store)
        tkey = result["trace_key"]
        stored = store.items(prefix=f"misses:{tkey}:", namespace=NS_METRICS)
        assert len(stored) == 4
        for value in stored.values():
            assert set(value) == {"accesses", "misses"}

    def test_partial_overlap_reuses_group_checkpoints(self, store):
        execute_job(sweep_spec(), store)
        # A superset grid at the same line size: the overlapping configs
        # come straight from the metric store and the new ones reuse the
        # checkpointed single-pass group state (no extra full passes).
        bigger = sweep_spec(
            configs={"sets": [8, 16, 32], "assocs": [1, 2], "line_sizes": [16]}
        )
        result = execute_job(bigger, store)
        assert result["from_store"] == 4
        assert result["simulated"] == 2
        # The checkpoint namespace holds the shared group states.
        assert store.count(NS_EVALCACHE) > 0

    def test_equivalent_specs_share_store_entries(self, store):
        execute_job(sweep_spec(), store)
        # Same trace spec with keys in another order: same content address.
        reordered = sweep_spec(
            trace={
                "max_size": 32,
                "footprint": 8192,
                "ranges": 200,
                "seed": 7,
                "kind": "synthetic",
            }
        )
        result = execute_job(reordered, store)
        assert result["from_store"] == 4
        assert result["simulated"] == 0


class TestEstimateAndExplore:
    def test_estimate_grid_shape(self, store):
        spec = {
            "kind": "estimate",
            "benchmark": "085.gcc",
            "role": "icache",
            "scale": 0.05,
            "visits": 4000,
            "configs": {"sets": [64], "assocs": [1, 2], "line_sizes": [32]},
            "dilations": [1.0, 2.0],
        }
        result = execute_job(spec, store)
        assert result["kind"] == "estimate"
        assert len(result["results"]) == 2
        for doc in result["results"]:
            assert set(doc["misses"]) == {"1", "2"}
            for value in doc["misses"].values():
                assert value >= 0
        # Priming checkpointed into the shared store: a second evaluator
        # adopts the states instead of re-simulating.
        assert store.count(NS_EVALCACHE) > 0
        before = store.count(NS_EVALCACHE)
        execute_job(spec, store)
        assert store.count(NS_EVALCACHE) == before

    def test_estimate_unknown_benchmark_raises(self, store):
        spec = {
            "kind": "estimate",
            "benchmark": "999.nope",
            "configs": [{"sets": 8, "assoc": 1, "line_size": 16}],
        }
        with pytest.raises(ServiceError, match="cannot build"):
            execute_job(spec, store)


class TestChunkedTraceKind:
    def _chunked_spec(self, tmp_path, **overrides):
        from repro.trace.chunkstore import write_chunked

        starts, sizes = build_trace_arrays(SYNTH)
        path = tmp_path / "trace.rct"
        with write_chunked(path, starts, sizes, chunk_ranges=64) as trace:
            digest = trace.digest
        spec = sweep_spec(
            trace={"kind": "chunked", "path": str(path), "digest": digest}
        )
        spec.update(overrides)
        return spec

    def test_results_match_in_memory_sweep(self, store, tmp_path):
        result = execute_job(self._chunked_spec(tmp_path), store)
        assert result["simulated"] == 4
        starts, sizes = build_trace_arrays(SYNTH)
        for doc in result["results"]:
            config = CacheConfig(doc["sets"], doc["assoc"], doc["line_size"])
            expected = simulate_trace(config, starts, sizes)
            assert doc["misses"] == expected.misses

    def test_digest_pin_rejects_changed_file(self, store, tmp_path):
        from repro.trace.chunkstore import write_chunked

        spec = self._chunked_spec(tmp_path)
        starts, sizes = build_trace_arrays(SYNTH)
        write_chunked(
            tmp_path / "trace.rct", starts[:50], sizes[:50]
        ).close()  # rewrite the file behind the pinned digest
        with pytest.raises(ServiceError, match="digest"):
            execute_job(spec, store)

    def test_validate_requires_path(self):
        with pytest.raises(ServiceError, match="path"):
            validate_spec(sweep_spec(trace={"kind": "chunked"}))

    def test_missing_file_is_service_error(self, store, tmp_path):
        spec = sweep_spec(
            trace={"kind": "chunked", "path": str(tmp_path / "nope.rct")}
        )
        with pytest.raises(ServiceError):
            execute_job(spec, store)


class TestSampledSweepJobs:
    SAMPLE = {"intervals": 4, "interval_ranges": 30, "warmup_ranges": 10}

    def test_sampled_results_flagged_and_plausible(self, store):
        result = execute_job(sweep_spec(sample=self.SAMPLE), store)
        assert result["sampled"] is True
        assert ":sample=" in result["trace_key"]
        exact = execute_job(sweep_spec(), store)
        by_config = {
            (d["sets"], d["assoc"], d["line_size"]): d
            for d in exact["results"]
        }
        for doc in result["results"]:
            assert doc["estimated"] is True
            assert doc["intervals"] >= 1
            true = by_config[(doc["sets"], doc["assoc"], doc["line_size"])]
            assert doc["misses"] == pytest.approx(true["misses"], rel=0.5)

    def test_sampled_and_exact_keys_never_collide(self, store):
        execute_job(sweep_spec(), store)
        sampled = execute_job(sweep_spec(sample=self.SAMPLE), store)
        assert sampled["from_store"] == 0  # exact results not reused
        again = execute_job(sweep_spec(sample=self.SAMPLE), store)
        assert again["from_store"] == 4  # same plan: reused
        exact = execute_job(sweep_spec(), store)
        assert exact["from_store"] == 4  # exact results untouched

    def test_different_plans_are_distinct(self, store):
        execute_job(sweep_spec(sample=self.SAMPLE), store)
        other = execute_job(
            sweep_spec(sample={**self.SAMPLE, "intervals": 2}), store
        )
        assert other["from_store"] == 0

    def test_validate_rejects_bad_sample(self):
        with pytest.raises(ServiceError, match="sample"):
            validate_spec(sweep_spec(sample={"intervals": 4}))
        with pytest.raises(ServiceError, match="sample"):
            validate_spec(sweep_spec(sample="first"))
        with pytest.raises(ServiceError):
            validate_spec(
                sweep_spec(sample={**self.SAMPLE, "mode": "random"})
            )
