"""Unit tests for repro.service.store."""

import multiprocessing
import sys

import pytest

from repro.errors import EvaluationCacheError, ServiceError
from repro.explore.evalcache import EvaluationCache
from repro.service.store import (
    ResultStore,
    StoreEvaluationCache,
    open_evaluation_cache,
    require_store,
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store.sqlite")


class TestKeyValue:
    def test_put_get_round_trip(self, store):
        store.put("k", {"misses": 10, "accesses": 99})
        assert store.get("k") == {"misses": 10, "accesses": 99}

    def test_get_absent_is_none_and_miss(self, store):
        assert store.get("absent") is None
        assert (store.hits, store.misses) == (0, 1)

    def test_present_null_is_a_hit(self, store):
        store.put("k", None)
        assert "k" in store
        assert store.get("k") is None
        assert (store.hits, store.misses) == (1, 0)

    def test_upsert_overwrites(self, store):
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert store.count() == 1

    def test_put_many_and_items(self, store):
        store.put_many({f"p/{i}": i for i in range(5)})
        store.put("other", -1)
        assert store.items(prefix="p/") == {f"p/{i}": i for i in range(5)}
        assert store.keys(prefix="p/") == [f"p/{i}" for i in range(5)]

    def test_items_limit(self, store):
        store.put_many({f"k{i}": i for i in range(10)})
        assert len(store.items(limit=3)) == 3

    def test_get_or_compute_calls_once(self, store):
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert store.get_or_compute("k", compute) == 42
        assert store.get_or_compute("k", compute) == 42
        assert len(calls) == 1
        assert (store.hits, store.misses) == (1, 1)

    def test_unserializable_value_raises(self, store):
        with pytest.raises(EvaluationCacheError, match="JSON"):
            store.put("bad", object())
        assert store.count() == 0

    def test_glob_metacharacters_in_prefix_are_literal(self, store):
        store.put("a*b[1]?", 1)
        store.put("axb11x", 2)  # would match if * ? [ were wildcards
        assert store.items(prefix="a*b[1]?") == {"a*b[1]?": 1}


class TestNamespaces:
    def test_namespaces_are_disjoint(self, store):
        store.put("k", 1, namespace="metrics")
        store.put("k", 2, namespace="evalcache")
        assert store.get("k", namespace="metrics") == 1
        assert store.get("k", namespace="evalcache") == 2
        assert store.namespaces() == {"metrics": 1, "evalcache": 1}

    def test_default_namespace(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite", namespace="frontiers")
        store.put("k", 1)
        assert store.count("frontiers") == 1
        assert store.count("metrics") == 0


class TestGC:
    def test_delete(self, store):
        store.put("k", 1)
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_gc_by_prefix(self, store):
        store.put_many({"old/a": 1, "old/b": 2, "keep": 3})
        assert store.gc(prefix="old/") == 2
        assert store.keys() == ["keep"]

    def test_gc_by_age(self, store):
        store.put("fresh", 1)
        # Everything was just written: an age threshold removes nothing,
        # no threshold clears the namespace.
        assert store.gc(older_than=3600) == 0
        assert store.gc() == 1
        store.vacuum()

    def test_gc_scoped_to_namespace(self, store):
        store.put("k", 1, namespace="metrics")
        store.put("k", 1, namespace="evalcache")
        assert store.gc(namespace="evalcache") == 1
        assert store.count("metrics") == 1


class TestStats:
    def test_stats_document(self, store):
        store.put("k", 1)
        store.get("k")
        store.get("absent")
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1
        assert stats["db_bytes"] > 0


class TestDurability:
    def test_reopen_sees_writes(self, tmp_path):
        path = tmp_path / "store.sqlite"
        ResultStore(path).put("k", {"a": 1})
        assert ResultStore(path).get("k") == {"a": 1}

    def test_two_handles_share_one_database(self, tmp_path):
        path = tmp_path / "store.sqlite"
        writer = ResultStore(path)
        reader = ResultStore(path)
        writer.put("k", 7)
        assert reader.get("k") == 7  # no stale snapshot

    def test_transaction_rolls_back_on_error(self, store):
        with pytest.raises(RuntimeError):
            with store.transaction() as conn:
                conn.execute(
                    "INSERT INTO results (namespace, key, value, created,"
                    " updated) VALUES ('metrics', 'k', '1', 0, 0)"
                )
                raise RuntimeError("boom")
        assert store.get("k") is None

    def test_parent_directory_created(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nest" / "s.sqlite")
        store.put("k", 1)
        assert store.get("k") == 1


def _store_hammer(path, worker, n_keys):
    store = ResultStore(path)
    for i in range(n_keys):
        store.put(f"w{worker}/k{i}", worker * 1000 + i)
        store.put("shared", worker)  # contended row
    store.close()


class TestConcurrentProcesses:
    @pytest.mark.skipif(
        sys.platform.startswith("win"), reason="fork is POSIX"
    )
    def test_multiprocess_hammer(self, tmp_path):
        path = tmp_path / "store.sqlite"
        ResultStore(path)  # bootstrap the schema before forking
        ctx = multiprocessing.get_context("fork")
        workers, n_keys = 4, 25
        procs = [
            ctx.Process(target=_store_hammer, args=(path, w, n_keys))
            for w in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = ResultStore(path)
        for w in range(workers):
            for i in range(n_keys):
                assert store.get(f"w{w}/k{i}") == w * 1000 + i
        assert store.get("shared") in range(workers)
        assert store.count() == workers * n_keys + 1


class TestAdapter:
    """StoreEvaluationCache must behave exactly like the JSON backend."""

    def _both(self, tmp_path):
        json_cache = EvaluationCache(tmp_path / "metrics.json")
        sqlite_cache = StoreEvaluationCache(
            ResultStore(tmp_path / "metrics.sqlite")
        )
        return json_cache, sqlite_cache

    def test_get_put_equivalence(self, tmp_path):
        for cache in self._both(tmp_path):
            assert cache.get("k") is None
            cache.put("k", [1, 2.5, "x"])
            assert cache.get("k") == [1, 2.5, "x"]
            assert "k" in cache
            assert len(cache) == 1
            assert (cache.hits, cache.misses) == (1, 1)

    def test_null_value_hit_equivalence(self, tmp_path):
        for cache in self._both(tmp_path):
            cache.put("k", None)
            assert "k" in cache
            assert cache.get("k") is None
            assert (cache.hits, cache.misses) == (1, 0)

    def test_get_or_compute_equivalence(self, tmp_path):
        for cache in self._both(tmp_path):
            calls = []
            cache.get_or_compute("k", lambda: calls.append(1) or 9)
            assert cache.get_or_compute("k", lambda: 0) == 9
            assert len(calls) == 1

    def test_bulk_equivalence(self, tmp_path):
        for cache in self._both(tmp_path):
            with cache.bulk():
                for i in range(4):
                    cache.put(f"k{i}", i)
                # Pending writes are visible inside the block.
                assert cache.get("k0") == 0
                assert "k3" in cache
                assert len(cache) == 4
            assert cache.get("k2") == 2

    def test_bulk_is_one_transaction(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        cache = StoreEvaluationCache(store)
        observer = ResultStore(tmp_path / "s.sqlite")
        with cache.bulk():
            cache.put("k", 1)
            assert observer.contains("k", namespace="evalcache") is False
        assert observer.contains("k", namespace="evalcache") is True

    def test_put_many_and_stats(self, tmp_path):
        for cache in self._both(tmp_path):
            cache.put_many({"a": 1, "b": 2})
            stats = cache.stats()
            assert stats["entries"] == 2
            assert set(stats) == {"hits", "misses", "hit_rate", "entries"}

    def test_adapter_sees_other_writers_immediately(self, tmp_path):
        path = tmp_path / "s.sqlite"
        first = StoreEvaluationCache(ResultStore(path))
        second = StoreEvaluationCache(ResultStore(path))
        first.put("k", 1)
        assert second.get("k") == 1  # read-through, no snapshot


class TestOpenEvaluationCache:
    def test_sqlite_suffixes_select_store(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            cache = open_evaluation_cache(tmp_path / f"c{suffix}")
            assert isinstance(cache, StoreEvaluationCache)
            assert require_store(cache).path == tmp_path / f"c{suffix}"

    def test_json_path_keeps_legacy_backend(self, tmp_path):
        cache = open_evaluation_cache(tmp_path / "c.json")
        assert isinstance(cache, EvaluationCache)
        assert not isinstance(cache, StoreEvaluationCache)

    def test_none_is_in_memory(self):
        cache = open_evaluation_cache(None)
        assert isinstance(cache, EvaluationCache)
        assert cache.path is None

    def test_backends_are_interchangeable(self, tmp_path):
        """One code path, either backend: identical observable behavior."""
        for name in ("c.json", "c.sqlite"):
            cache = open_evaluation_cache(tmp_path / name)
            cache.put("x", {"v": 1})
            reopened = open_evaluation_cache(tmp_path / name)
            assert reopened.get("x") == {"v": 1}

    def test_require_store_rejects_json(self, tmp_path):
        with pytest.raises(ServiceError, match="not store-backed"):
            require_store(EvaluationCache(tmp_path / "c.json"))
