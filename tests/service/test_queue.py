"""Unit tests for repro.service.queue (leases, fencing, recovery)."""

import time

import pytest

from repro.errors import ServiceError, StaleLeaseError
from repro.service.queue import JobQueue
from repro.service.store import ResultStore


@pytest.fixture
def queue(tmp_path):
    return JobQueue(ResultStore(tmp_path / "service.sqlite"))


SPEC = {"kind": "sweep", "trace": {"kind": "synthetic"}, "configs": []}


class TestLifecycle:
    def test_submit_get(self, queue):
        job_id = queue.submit(SPEC)
        record = queue.get(job_id)
        assert record.state == "queued"
        assert record.spec == SPEC
        assert record.attempts == 0
        assert not record.terminal

    def test_claim_complete(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("worker-1")
        assert job.id == job_id
        assert job.state == "running"
        assert job.attempts == 1
        assert job.owner == "worker-1"
        queue.complete(job_id, {"ok": True})
        record = queue.get(job_id)
        assert record.state == "done"
        assert record.finished_ok
        assert record.result == {"ok": True}
        assert record.finished is not None

    def test_claim_is_fifo(self, queue):
        first = queue.submit({**SPEC, "tag": 1})
        second = queue.submit({**SPEC, "tag": 2})
        assert queue.claim().id == first
        assert queue.claim().id == second

    def test_claim_empty_queue_is_none(self, queue):
        assert queue.claim() is None

    def test_unknown_job_id(self, queue):
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.get("nope")

    def test_complete_requires_running(self, queue):
        job_id = queue.submit(SPEC)
        with pytest.raises(ServiceError, match="not running"):
            queue.complete(job_id, {})

    def test_counts_zero_filled(self, queue):
        assert queue.counts() == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
        }
        queue.submit(SPEC)
        assert queue.counts()["queued"] == 1

    def test_list_filters_and_orders(self, queue):
        ids = [queue.submit({**SPEC, "tag": i}) for i in range(3)]
        queue.claim()
        newest_first = [r.id for r in queue.list()]
        assert set(newest_first) == set(ids)
        assert [r.id for r in queue.list(state="queued")] != []
        assert len(queue.list(state="running")) == 1
        with pytest.raises(ServiceError, match="unknown job state"):
            queue.list(state="bogus")

    def test_to_dict_round_trip(self, queue):
        job_id = queue.submit(SPEC)
        doc = queue.get(job_id).to_dict()
        assert doc["id"] == job_id
        assert doc["state"] == "queued"
        assert doc["spec"] == SPEC


class TestRetries:
    def test_fail_requeues_until_budget_spent(self, queue):
        job_id = queue.submit(SPEC, max_attempts=2)
        queue.claim()
        assert queue.fail(job_id, "boom-1") == "queued"
        record = queue.get(job_id)
        assert record.state == "queued"
        assert record.attempts == 1
        queue.claim()
        assert queue.fail(job_id, "boom-2") == "failed"
        record = queue.get(job_id)
        assert record.state == "failed"
        assert record.terminal
        assert record.error == "boom-2"

    def test_fail_requires_running(self, queue):
        job_id = queue.submit(SPEC)
        with pytest.raises(ServiceError, match="not running"):
            queue.fail(job_id, "boom")

    def test_max_attempts_validated(self, queue):
        with pytest.raises(ServiceError, match="max_attempts"):
            queue.submit(SPEC, max_attempts=0)

    def test_unserializable_spec_rejected(self, queue):
        with pytest.raises(ServiceError, match="JSON"):
            queue.submit({"bad": object()})


class TestLeases:
    """Claims are leases: deadline + fencing token, renewed by heartbeat."""

    def test_claim_stamps_lease_deadline(self, queue):
        queue.submit(SPEC)
        before = time.time()
        job = queue.claim("w1", lease=30.0)
        assert job.lease_expires is not None
        assert before + 25.0 < job.lease_expires < time.time() + 35.0
        assert job.token == job.attempts == 1

    def test_heartbeat_extends_lease(self, queue):
        queue.submit(SPEC)
        job = queue.claim("w1", lease=5.0)
        deadline = queue.heartbeat(job.id, job.token, lease=60.0)
        assert deadline > job.lease_expires
        assert queue.get(job.id).lease_expires == deadline

    def test_heartbeat_with_stale_token_raises(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("w1")
        with pytest.raises(StaleLeaseError, match="stale fencing token"):
            queue.heartbeat(job_id, job.token + 1)

    def test_heartbeat_on_finished_job_raises(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("w1")
        queue.complete(job_id, {}, token=job.token)
        with pytest.raises(StaleLeaseError):
            queue.heartbeat(job_id, job.token)

    def test_complete_with_correct_token(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("w1")
        queue.complete(job_id, {"ok": True}, token=job.token)
        record = queue.get(job_id)
        assert record.finished_ok
        assert record.lease_expires is None

    def test_complete_with_stale_token_is_fenced(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("w1")
        with pytest.raises(StaleLeaseError, match="cannot complete"):
            queue.complete(job_id, {"ok": False}, token=job.token + 7)
        # The rightful holder is unaffected.
        queue.complete(job_id, {"ok": True}, token=job.token)
        assert queue.get(job_id).result == {"ok": True}

    def test_fail_with_stale_token_is_fenced(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("w1")
        with pytest.raises(StaleLeaseError, match="cannot fail"):
            queue.fail(job_id, "boom", token=job.token + 1)
        assert queue.get(job_id).state == "running"

    def test_requeue_after_fail_clears_ownership(self, queue):
        """A row returned to queued belongs to nobody (no stale
        owner/started/lease misattributing it in /jobs listings)."""
        job_id = queue.submit(SPEC, max_attempts=3)
        job = queue.claim("w1")
        assert queue.fail(job_id, "boom", token=job.token) == "queued"
        record = queue.get(job_id)
        assert record.owner is None
        assert record.started is None
        assert record.lease_expires is None

    def test_terminal_fail_keeps_owner_for_history(self, queue):
        job_id = queue.submit(SPEC, max_attempts=1)
        job = queue.claim("w1")
        assert queue.fail(job_id, "boom", token=job.token) == "failed"
        record = queue.get(job_id)
        assert record.owner == "w1"
        assert record.lease_expires is None

    def test_negative_lease_rejected(self, queue):
        queue.submit(SPEC)
        with pytest.raises(ServiceError, match="lease"):
            queue.claim("w1", lease=-1.0)


class TestCapabilityTags:
    def test_claim_skips_jobs_requiring_missing_tags(self, queue):
        gpu = queue.submit({**SPEC, "requires": ["gpu"]})
        plain = queue.submit({**SPEC, "tag": "plain"})
        # An untagged worker gets the untagged job, not the gpu one.
        job = queue.claim("w1", tags=[])
        assert job.id == plain
        assert queue.claim("w1", tags=[]) is None
        # A gpu-capable worker picks it up.
        assert queue.claim("w2", tags=["gpu", "bigmem"]).id == gpu

    def test_claim_without_tags_takes_anything(self, queue):
        tagged = queue.submit({**SPEC, "requires": ["gpu"]})
        assert queue.claim("w1").id == tagged


class TestRecovery:
    """Kill-and-resume: only *lease-expired* running jobs requeue."""

    def test_recover_requeues_expired_lease(self, tmp_path):
        path = tmp_path / "service.sqlite"
        queue = JobQueue(ResultStore(path))
        job_id = queue.submit(SPEC)
        queue.claim("dead-worker", lease=0.0)  # expires immediately
        # "New process": a fresh queue over the same database.
        restarted = JobQueue(ResultStore(path))
        assert restarted.recover() == [job_id]
        record = restarted.get(job_id)
        assert record.state == "queued"
        assert record.attempts == 1  # the dead attempt stays counted
        assert record.owner is None
        assert record.started is None
        # The job is claimable again and can finish normally.
        job = restarted.claim()
        assert job.id == job_id
        restarted.complete(job_id, {"resumed": True}, token=job.token)
        assert restarted.get(job_id).finished_ok

    def test_recover_leaves_live_leases_alone(self, tmp_path):
        """The double-execution hazard: a second service process
        sharing the database must NOT requeue jobs a live process is
        still executing."""
        path = tmp_path / "service.sqlite"
        queue = JobQueue(ResultStore(path))
        job_id = queue.submit(SPEC)
        queue.claim("live-worker", lease=60.0)
        second = JobQueue(ResultStore(path))
        assert second.recover() == []
        record = second.get(job_id)
        assert record.state == "running"
        assert record.owner == "live-worker"

    def test_recover_fails_exhausted_jobs(self, queue):
        job_id = queue.submit(SPEC, max_attempts=1)
        queue.claim(lease=0.0)
        assert queue.recover() == [job_id]
        record = queue.get(job_id)
        assert record.state == "failed"
        assert "lease expired" in record.error

    def test_recover_scoped_to_owner_ignores_lease(self, queue):
        mine = queue.submit({**SPEC, "tag": "mine"})
        theirs = queue.submit({**SPEC, "tag": "theirs"})
        queue.claim("me", lease=60.0)
        queue.claim("them", lease=60.0)
        assert queue.recover(owner="me") == [mine]
        assert queue.get(mine).state == "queued"
        assert queue.get(theirs).state == "running"

    def test_recover_treats_leaseless_rows_as_expired(self, queue):
        """Rows claimed by a pre-lease build (lease_expires NULL) are
        orphans by definition."""
        job_id = queue.submit(SPEC)
        queue.claim("old-build")
        with queue.store.transaction() as conn:
            conn.execute(
                "UPDATE jobs SET lease_expires = NULL WHERE id = ?",
                (job_id,),
            )
        assert queue.recover() == [job_id]
        assert queue.get(job_id).state == "queued"

    def test_recover_grace_delays_reaping(self, queue):
        job_id = queue.submit(SPEC)
        queue.claim("w1", lease=0.0)
        assert queue.recover(grace=60.0) == []
        assert queue.recover() == [job_id]

    def test_recover_noop_when_clean(self, queue):
        queue.submit(SPEC)
        assert queue.recover() == []


class TestFencingEndToEnd:
    """The full lease-loss story: expired mid-run, re-leased, finished
    elsewhere — the stale worker's complete() must be rejected and the
    store must hold exactly one result for the config."""

    def test_stale_complete_rejected_single_result(self, tmp_path):
        store = ResultStore(tmp_path / "service.sqlite")
        queue = JobQueue(store)
        job_id = queue.submit(SPEC)

        slow = queue.claim("slow-worker", lease=0.0)  # lease dead on arrival
        assert queue.recover() == [job_id]  # reaper requeues it

        fast = queue.claim("fast-worker", lease=60.0)
        assert fast.token == slow.token + 1
        store.put("misses:spec=x:S8A1L16", {"misses": 42, "accesses": 100})
        queue.complete(job_id, {"misses": 42}, token=fast.token)

        # The slow worker limps back with its stale token.
        with pytest.raises(StaleLeaseError):
            queue.complete(job_id, {"misses": 41}, token=slow.token)
        with pytest.raises(StaleLeaseError):
            queue.fail(job_id, "late crash", token=slow.token)

        record = queue.get(job_id)
        assert record.result == {"misses": 42}  # fast worker's outcome
        assert record.attempts == fast.token
        assert len(store.keys(prefix="misses:spec=x:")) == 1


class TestWorkerRegistry:
    def test_register_list_and_reap(self, queue):
        wid = queue.register_worker(tags=["gpu"], meta={"pid": 123})
        listed = queue.workers()
        assert [w["id"] for w in listed] == [wid]
        assert listed[0]["tags"] == ["gpu"]
        assert listed[0]["meta"] == {"pid": 123}
        assert queue.reap_workers(ttl=60.0) == []
        assert queue.reap_workers(ttl=0.0) == [wid]
        assert queue.workers() == []

    def test_register_refreshes_existing(self, queue):
        wid = queue.register_worker(worker_id="w-fixed", tags=["a"])
        assert wid == "w-fixed"
        queue.register_worker(worker_id="w-fixed", tags=["a", "b"])
        workers = queue.workers()
        assert len(workers) == 1
        assert workers[0]["tags"] == ["a", "b"]

    def test_worker_seen_bumps_liveness(self, queue):
        wid = queue.register_worker()
        stamp = queue.workers()[0]["last_seen"]
        time.sleep(0.01)
        queue.worker_seen(wid)
        assert queue.workers()[0]["last_seen"] > stamp
