"""Unit tests for repro.service.queue."""

import pytest

from repro.errors import ServiceError
from repro.service.queue import JobQueue
from repro.service.store import ResultStore


@pytest.fixture
def queue(tmp_path):
    return JobQueue(ResultStore(tmp_path / "service.sqlite"))


SPEC = {"kind": "sweep", "trace": {"kind": "synthetic"}, "configs": []}


class TestLifecycle:
    def test_submit_get(self, queue):
        job_id = queue.submit(SPEC)
        record = queue.get(job_id)
        assert record.state == "queued"
        assert record.spec == SPEC
        assert record.attempts == 0
        assert not record.terminal

    def test_claim_complete(self, queue):
        job_id = queue.submit(SPEC)
        job = queue.claim("worker-1")
        assert job.id == job_id
        assert job.state == "running"
        assert job.attempts == 1
        assert job.owner == "worker-1"
        queue.complete(job_id, {"ok": True})
        record = queue.get(job_id)
        assert record.state == "done"
        assert record.finished_ok
        assert record.result == {"ok": True}
        assert record.finished is not None

    def test_claim_is_fifo(self, queue):
        first = queue.submit({**SPEC, "tag": 1})
        second = queue.submit({**SPEC, "tag": 2})
        assert queue.claim().id == first
        assert queue.claim().id == second

    def test_claim_empty_queue_is_none(self, queue):
        assert queue.claim() is None

    def test_unknown_job_id(self, queue):
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.get("nope")

    def test_complete_requires_running(self, queue):
        job_id = queue.submit(SPEC)
        with pytest.raises(ServiceError, match="not running"):
            queue.complete(job_id, {})

    def test_counts_zero_filled(self, queue):
        assert queue.counts() == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
        }
        queue.submit(SPEC)
        assert queue.counts()["queued"] == 1

    def test_list_filters_and_orders(self, queue):
        ids = [queue.submit({**SPEC, "tag": i}) for i in range(3)]
        queue.claim()
        newest_first = [r.id for r in queue.list()]
        assert set(newest_first) == set(ids)
        assert [r.id for r in queue.list(state="queued")] != []
        assert len(queue.list(state="running")) == 1
        with pytest.raises(ServiceError, match="unknown job state"):
            queue.list(state="bogus")

    def test_to_dict_round_trip(self, queue):
        job_id = queue.submit(SPEC)
        doc = queue.get(job_id).to_dict()
        assert doc["id"] == job_id
        assert doc["state"] == "queued"
        assert doc["spec"] == SPEC


class TestRetries:
    def test_fail_requeues_until_budget_spent(self, queue):
        job_id = queue.submit(SPEC, max_attempts=2)
        queue.claim()
        assert queue.fail(job_id, "boom-1") == "queued"
        record = queue.get(job_id)
        assert record.state == "queued"
        assert record.attempts == 1
        queue.claim()
        assert queue.fail(job_id, "boom-2") == "failed"
        record = queue.get(job_id)
        assert record.state == "failed"
        assert record.terminal
        assert record.error == "boom-2"

    def test_fail_requires_running(self, queue):
        job_id = queue.submit(SPEC)
        with pytest.raises(ServiceError, match="not running"):
            queue.fail(job_id, "boom")

    def test_max_attempts_validated(self, queue):
        with pytest.raises(ServiceError, match="max_attempts"):
            queue.submit(SPEC, max_attempts=0)

    def test_unserializable_spec_rejected(self, queue):
        with pytest.raises(ServiceError, match="JSON"):
            queue.submit({"bad": object()})


class TestRecovery:
    """Kill-and-resume: orphaned running jobs requeue on startup."""

    def test_recover_requeues_orphans(self, tmp_path):
        path = tmp_path / "service.sqlite"
        queue = JobQueue(ResultStore(path))
        job_id = queue.submit(SPEC)
        queue.claim("dead-worker")
        # "New process": a fresh queue over the same database.
        restarted = JobQueue(ResultStore(path))
        assert restarted.recover() == 1
        record = restarted.get(job_id)
        assert record.state == "queued"
        assert record.attempts == 1  # the dead attempt stays counted
        # The job is claimable again and can finish normally.
        assert restarted.claim().id == job_id
        restarted.complete(job_id, {"resumed": True})
        assert restarted.get(job_id).finished_ok

    def test_recover_fails_exhausted_jobs(self, queue):
        job_id = queue.submit(SPEC, max_attempts=1)
        queue.claim()
        assert queue.recover() == 1
        record = queue.get(job_id)
        assert record.state == "failed"
        assert "worker died" in record.error

    def test_recover_scoped_to_owner(self, queue):
        mine = queue.submit({**SPEC, "tag": "mine"})
        theirs = queue.submit({**SPEC, "tag": "theirs"})
        queue.claim("me")
        queue.claim("them")
        assert queue.recover(owner="me") == 1
        assert queue.get(mine).state == "queued"
        assert queue.get(theirs).state == "running"

    def test_recover_noop_when_clean(self, queue):
        queue.submit(SPEC)
        assert queue.recover() == 0
