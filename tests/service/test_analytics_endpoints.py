"""End-to-end tests for the analytics endpoints on the eval service."""

import csv
import io
import threading

import pytest

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import EvalService, make_server

SYNTH = {
    "kind": "synthetic",
    "seed": 7,
    "ranges": 120,
    "footprint": 4096,
    "max_size": 32,
}


def sweep_spec(sets):
    return {
        "kind": "sweep",
        "trace": SYNTH,
        "configs": {"sets": sets, "assocs": [1, 2], "line_sizes": [16]},
    }


@pytest.fixture
def service(tmp_path):
    with EvalService(tmp_path / "service.sqlite", workers=1) as svc:
        server = make_server(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield svc, ServiceClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()


def run_job(client, spec):
    job_id = client.submit(spec)
    record = client.wait(job_id, timeout=60.0)
    assert record.finished_ok, record.error
    return job_id


class TestRunsEndpoints:
    def test_job_execution_records_a_run(self, service):
        _, client = service
        job_id = run_job(client, sweep_spec([64, 128]))
        runs = client.runs()
        assert any(r["id"] == job_id for r in runs)
        doc = client.run(job_id)
        assert doc["run"]["kind"] == "sweep"
        assert doc["run"]["state"] == "done"
        # 2 sets x 2 assocs x 1 line size = 4 design rows.
        assert len(doc["rows"]) == 4
        for row in doc["rows"]:
            assert row["misses"] is not None
            assert row["wall_s"] is not None

    def test_runs_filtering(self, service):
        _, client = service
        run_job(client, sweep_spec([64]))
        assert client.runs(kind="sweep")
        assert client.runs(kind="explore") == []
        assert client.runs(state="failed") == []

    def test_table_csv_endpoint(self, service):
        _, client = service
        job_id = run_job(client, sweep_spec([64, 128]))
        text = client.run_table_csv(job_id)
        parsed = list(csv.DictReader(io.StringIO(text)))
        doc = client.run(job_id)
        assert len(parsed) == len(doc["rows"]) == 4
        stored = {r["design"]: r for r in doc["rows"]}
        for line in parsed:
            assert line["run_id"] == job_id
            assert float(line["misses"]) == stored[line["design"]]["misses"]

    def test_compare_identical_reruns(self, service):
        _, client = service
        first = run_job(client, sweep_spec([64, 128]))
        second = run_job(client, sweep_spec([64, 128]))
        doc = client.compare(first, second)
        assert doc["rows"]["identical"]
        assert doc["frontier"]["identical"]
        # The rerun was served from the result store, visible in the
        # cache-hit columns.
        rerun = client.run(second)["run"]["journal"]
        assert rerun["dedup_from_store"] == 4
        assert rerun["dedup_simulated"] == 0

    def test_compare_requires_both_ids(self, service):
        _, client = service
        with pytest.raises(ServiceError):
            client.compare("", "x")

    def test_unknown_run_is_http_404(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="404"):
            client.run("not-a-run")
        with pytest.raises(ServiceError, match="404"):
            client.run_table_csv("not-a-run")

    def test_post_run_round_trips(self, service):
        _, client = service
        run = {
            "id": "posted-1",
            "kind": "explore",
            "state": "done",
            "started": 1.0,
            "finished": 2.0,
            "wall_s": 1.0,
            "rows": 1,
            "journal": {"passes": 3},
        }
        rows = [{"design": "d1", "cost": 10.0, "cycles": 100.0}]
        client.record_run(run, rows)
        doc = client.run("posted-1")
        assert doc["run"]["journal"]["passes"] == 3
        assert doc["rows"][0]["cost"] == 10.0

    def test_post_run_without_id_is_http_400(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="400"):
            client.record_run({"kind": "explore"}, [])


class TestMetricsHistoryAndDashboard:
    def test_metrics_history_accumulates(self, service):
        svc, client = service
        run_job(client, sweep_spec([64]))
        svc._sample_metrics()
        doc = client.metrics_history()
        assert doc["capacity"] >= 1
        assert doc["total"] >= 1
        assert doc["samples"]
        assert "queued" in doc["samples"][-1]

    def test_dashboard_lists_runs(self, service):
        _, client = service
        job_id = run_job(client, sweep_spec([64]))
        page = client.dashboard()
        assert page.lstrip().startswith("<!DOCTYPE html>")
        assert job_id in page
