"""Public-API surface checks.

Guards the contract a downstream user relies on: everything exported in
``__all__`` resolves, and every public module, class and function carries
a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.ahh",
    "repro.isa",
    "repro.machine",
    "repro.vliwcomp",
    "repro.iformat",
    "repro.trace",
    "repro.cache",
    "repro.explore",
    "repro.runtime",
    "repro.workloads",
    "repro.experiments",
]


def all_modules():
    out = []
    for name in PACKAGES:
        package = importlib.import_module(name)
        out.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue  # importing it would execute the CLI
            out.append(importlib.import_module(f"{name}.{info.name}"))
    return out


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for symbol in getattr(package, "__all__", []):
            assert hasattr(package, symbol), (
                f"{package_name}.__all__ names missing symbol {symbol!r}"
            )

    def test_top_level_convenience_imports(self):
        assert repro.P1111.issue_width == 4
        assert repro.CacheConfig.from_size(1024, 1, 32).sets == 32
        assert callable(repro.load_benchmark)
        assert callable(repro.measure_dilation)


class TestDocstrings:
    def test_every_module_documented(self):
        for module in all_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_public_classes_and_functions_documented(self):
        missing = []
        for module in all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not obj.__doc__:
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in all_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    if not inspect.isfunction(member):
                        continue
                    if not member.__doc__:
                        missing.append(f"{module.__name__}.{cls_name}.{name}")
        # Tiny accessors may reasonably go untended, but the bulk of the
        # public method surface must be documented.
        assert len(missing) < 25, f"undocumented methods: {missing}"
